//! Linear integer arithmetic via the general simplex of Dutertre & de Moura
//! (rational relaxation) plus branch-and-bound for integrality.
//!
//! Constraints arrive as bounds on linear combinations tagged with the SAT
//! literal that asserted them; infeasibility is reported as the set of
//! responsible literals (a Farkas-style conflict from the failing row).
//!
//! Arithmetic uses `i128` rationals with gcd normalization; overflow is
//! detected and surfaced as [`LiaOutcome::Unknown`] rather than silently
//! wrapping, so `Unsat` answers are always trustworthy.

use std::collections::HashMap;
use std::sync::Arc;

use veris_obs::{Counter, ResourceMeter};

/// Opaque reason tag attached to asserted bounds; the SMT layer maps tags
/// back to (sets of) SAT literals when building conflict clauses.
pub type Tag = u32;

/// Exact rational with `i128` components. Invariant: `den > 0`, gcd-reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// Arithmetic overflow marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overflow;

type RatResult = Result<Rat, Overflow>;

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    pub fn new(num: i128, den: i128) -> RatResult {
        if den == 0 {
            return Err(Overflow);
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = crate::term::gcd(num, den);
        let g = if g == 0 { 1 } else { g };
        Ok(Rat {
            num: sign * num / g,
            den: sign * den / g,
        })
    }

    pub fn num(&self) -> i128 {
        self.num
    }

    pub fn den(&self) -> i128 {
        self.den
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    pub fn add(&self, o: &Rat) -> RatResult {
        let n1 = self.num.checked_mul(o.den).ok_or(Overflow)?;
        let n2 = o.num.checked_mul(self.den).ok_or(Overflow)?;
        let num = n1.checked_add(n2).ok_or(Overflow)?;
        let den = self.den.checked_mul(o.den).ok_or(Overflow)?;
        Rat::new(num, den)
    }

    pub fn sub(&self, o: &Rat) -> RatResult {
        self.add(&Rat {
            num: -o.num,
            den: o.den,
        })
    }

    pub fn mul(&self, o: &Rat) -> RatResult {
        let num = self.num.checked_mul(o.num).ok_or(Overflow)?;
        let den = self.den.checked_mul(o.den).ok_or(Overflow)?;
        Rat::new(num, den)
    }

    pub fn div(&self, o: &Rat) -> RatResult {
        if o.num == 0 {
            return Err(Overflow);
        }
        self.mul(&Rat {
            num: o.den,
            den: o.num,
        })
    }

    pub fn neg(&self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_pos(&self) -> bool {
        self.num > 0
    }

    pub fn is_neg(&self) -> bool {
        self.num < 0
    }

    pub fn cmp_rat(&self, o: &Rat) -> Result<std::cmp::Ordering, Overflow> {
        let l = self.num.checked_mul(o.den).ok_or(Overflow)?;
        let r = o.num.checked_mul(self.den).ok_or(Overflow)?;
        Ok(l.cmp(&r))
    }

    pub fn lt(&self, o: &Rat) -> Result<bool, Overflow> {
        Ok(self.cmp_rat(o)? == std::cmp::Ordering::Less)
    }

    pub fn le(&self, o: &Rat) -> Result<bool, Overflow> {
        Ok(self.cmp_rat(o)? != std::cmp::Ordering::Greater)
    }
}

/// A solver-level arithmetic variable (column).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LVar(pub u32);

#[derive(Clone, Copy, Debug)]
struct Bound {
    value: Rat,
    /// `None` marks an internal branch-and-bound bound.
    reason: Option<Tag>,
}

/// Outcome of an LIA check.
#[derive(Clone, Debug)]
pub enum LiaOutcome {
    /// Feasible: integer model, indexed by `LVar`.
    Sat(Vec<i128>),
    /// Infeasible: responsible literal set.
    Unsat(Vec<Tag>),
    /// Overflow or branch limit exceeded.
    Unknown,
}

/// Simplex state. Cloneable so branch-and-bound can snapshot.
#[derive(Clone)]
pub struct Lia {
    /// Number of columns (original + slack).
    num_vars: usize,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    /// Current assignment β.
    beta: Vec<Rat>,
    /// Rows: `basic[r]` = Σ tableau[r][col] * col (over nonbasic columns).
    rows: Vec<HashMap<usize, Rat>>,
    row_owner: Vec<usize>,
    /// For each var: Some(row) if basic.
    basic_in: Vec<Option<usize>>,
    /// Map from a normalized linear combination to its slack var.
    combos: HashMap<Vec<(i128, u32)>, usize>,
    /// Is this var required to be integral? (All real columns are; slacks of
    /// integer combos are too.)
    is_int: Vec<bool>,
    /// Optional resource meter. `Arc`-shared so branch-and-bound clones keep
    /// charging the same account.
    meter: Option<Arc<ResourceMeter>>,
}

impl Default for Lia {
    fn default() -> Self {
        Self::new()
    }
}

impl Lia {
    pub fn new() -> Lia {
        Lia {
            num_vars: 0,
            lower: Vec::new(),
            upper: Vec::new(),
            beta: Vec::new(),
            rows: Vec::new(),
            row_owner: Vec::new(),
            basic_in: Vec::new(),
            combos: HashMap::new(),
            is_int: Vec::new(),
            meter: None,
        }
    }

    /// Attach a resource meter; pivots and branch splits are charged to it.
    pub fn set_meter(&mut self, meter: Arc<ResourceMeter>) {
        self.meter = Some(meter);
    }

    pub fn new_var(&mut self) -> LVar {
        let v = self.num_vars;
        self.num_vars += 1;
        self.lower.push(None);
        self.upper.push(None);
        self.beta.push(Rat::ZERO);
        self.basic_in.push(None);
        self.is_int.push(true);
        LVar(v as u32)
    }

    /// Get (or create) the slack variable for a linear combination
    /// `Σ coeff * var` (the combination must be sorted by var and have at
    /// least one entry).
    fn slack_for(&mut self, combo: &[(i128, LVar)]) -> Result<usize, Overflow> {
        let key: Vec<(i128, u32)> = combo.iter().map(|&(c, v)| (c, v.0)).collect();
        if let Some(&s) = self.combos.get(&key) {
            return Ok(s);
        }
        let s = self.new_var().0 as usize;
        self.combos.insert(key, s);
        // Row: s = Σ coeff * var. Express RHS over *nonbasic* vars by
        // substituting any basic vars with their rows.
        let mut row: HashMap<usize, Rat> = HashMap::new();
        for &(c, v) in combo {
            let c = Rat::int(c);
            let vi = v.0 as usize;
            match self.basic_in[vi] {
                None => {
                    let e = row.entry(vi).or_insert(Rat::ZERO);
                    *e = e.add(&c)?;
                }
                Some(r) => {
                    let sub: Vec<(usize, Rat)> =
                        self.rows[r].iter().map(|(&k, &val)| (k, val)).collect();
                    for (k, val) in sub {
                        let e = row.entry(k).or_insert(Rat::ZERO);
                        *e = e.add(&c.mul(&val)?)?;
                    }
                }
            }
        }
        row.retain(|_, v| !v.is_zero());
        // β for the new slack.
        let mut val = Rat::ZERO;
        for (&k, &c) in &row {
            val = val.add(&c.mul(&self.beta[k])?)?;
        }
        self.beta[s] = val;
        let row_idx = self.rows.len();
        self.rows.push(row);
        self.row_owner.push(s);
        self.basic_in[s] = Some(row_idx);
        Ok(s)
    }

    /// gcd-normalize a combination: divide coefficients by their gcd and
    /// tighten the bound accordingly (valid because all vars are integers).
    /// Returns the reduced combo and the divisor.
    fn gcd_reduce(combo: &[(i128, LVar)]) -> (Vec<(i128, LVar)>, i128) {
        let mut g: i128 = 0;
        for &(c, _) in combo {
            g = crate::term::gcd(g, c);
        }
        if g <= 1 {
            return (combo.to_vec(), 1);
        }
        (combo.iter().map(|&(c, v)| (c / g, v)).collect(), g)
    }

    /// Assert `Σ coeff*var <= bound` tagged with `lit`.
    pub fn assert_upper(
        &mut self,
        combo: &[(i128, LVar)],
        bound: i128,
        lit: Option<Tag>,
    ) -> Result<Option<Vec<Tag>>, Overflow> {
        let (combo, g) = Self::gcd_reduce(combo);
        let bound = bound.div_euclid(g);
        let combo = &combo[..];
        let (v, scale) = self.target_var(combo)?;
        // combo = scale * var(v): bound on v is bound/scale (direction flips
        // if scale < 0).
        let b = Rat::new(bound, scale)?;
        if scale > 0 {
            self.set_upper(v, b, lit)
        } else {
            self.set_lower(v, b, lit)
        }
    }

    /// Assert `Σ coeff*var >= bound` tagged with `lit`.
    pub fn assert_lower(
        &mut self,
        combo: &[(i128, LVar)],
        bound: i128,
        lit: Option<Tag>,
    ) -> Result<Option<Vec<Tag>>, Overflow> {
        let (combo, g) = Self::gcd_reduce(combo);
        // ceil division for the lower bound.
        let bound = -((-bound).div_euclid(g));
        let combo = &combo[..];
        let (v, scale) = self.target_var(combo)?;
        let b = Rat::new(bound, scale)?;
        if scale > 0 {
            self.set_lower(v, b, lit)
        } else {
            self.set_upper(v, b, lit)
        }
    }

    /// Reduce a combination to a single variable (creating a slack if it has
    /// more than one term), returning (var, scale).
    fn target_var(&mut self, combo: &[(i128, LVar)]) -> Result<(usize, i128), Overflow> {
        match combo {
            [] => Err(Overflow),
            [(c, v)] => Ok((v.0 as usize, *c)),
            _ => {
                let mut sorted: Vec<(i128, LVar)> = combo.to_vec();
                sorted.sort_by_key(|&(_, v)| v);
                Ok((self.slack_for(&sorted)?, 1))
            }
        }
    }

    fn set_upper(
        &mut self,
        v: usize,
        b: Rat,
        lit: Option<Tag>,
    ) -> Result<Option<Vec<Tag>>, Overflow> {
        if let Some(cur) = &self.upper[v] {
            if cur.value.le(&b)? {
                return Ok(None);
            }
        }
        if let Some(low) = self.lower[v] {
            if b.lt(&low.value)? {
                let mut lits = Vec::new();
                lits.extend(lit);
                lits.extend(low.reason);
                return Ok(Some(lits));
            }
        }
        self.upper[v] = Some(Bound {
            value: b,
            reason: lit,
        });
        if self.basic_in[v].is_none() && b.lt(&self.beta[v])? {
            self.update_nonbasic(v, b)?;
        }
        Ok(None)
    }

    fn set_lower(
        &mut self,
        v: usize,
        b: Rat,
        lit: Option<Tag>,
    ) -> Result<Option<Vec<Tag>>, Overflow> {
        if let Some(cur) = &self.lower[v] {
            if b.le(&cur.value)? {
                return Ok(None);
            }
        }
        if let Some(up) = self.upper[v] {
            if up.value.lt(&b)? {
                let mut lits = Vec::new();
                lits.extend(lit);
                lits.extend(up.reason);
                return Ok(Some(lits));
            }
        }
        self.lower[v] = Some(Bound {
            value: b,
            reason: lit,
        });
        if self.basic_in[v].is_none() && self.beta[v].lt(&b)? {
            self.update_nonbasic(v, b)?;
        }
        Ok(None)
    }

    /// Set a nonbasic variable's value and propagate into basic rows.
    fn update_nonbasic(&mut self, v: usize, val: Rat) -> Result<(), Overflow> {
        let delta = val.sub(&self.beta[v])?;
        self.beta[v] = val;
        for r in 0..self.rows.len() {
            if let Some(&c) = self.rows[r].get(&v) {
                let owner = self.row_owner[r];
                self.beta[owner] = self.beta[owner].add(&c.mul(&delta)?)?;
            }
        }
        Ok(())
    }

    /// Simplex feasibility check over the rationals.
    fn check_rational(&mut self) -> Result<Option<Vec<Tag>>, Overflow> {
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > 100_000 {
                return Err(Overflow); // degenerate cycling guard
            }
            // Find a basic variable violating a bound (Bland: smallest var).
            let mut violated: Option<(usize, bool)> = None; // (var, below_lower)
            for v in 0..self.num_vars {
                if self.basic_in[v].is_none() {
                    continue;
                }
                if let Some(l) = self.lower[v] {
                    if self.beta[v].lt(&l.value)? {
                        violated = Some((v, true));
                        break;
                    }
                }
                if let Some(u) = self.upper[v] {
                    if u.value.lt(&self.beta[v])? {
                        violated = Some((v, false));
                        break;
                    }
                }
            }
            let (xi, below) = match violated {
                None => return Ok(None),
                Some(x) => x,
            };
            let row_idx = self.basic_in[xi].unwrap();
            let row: Vec<(usize, Rat)> = {
                let mut r: Vec<(usize, Rat)> =
                    self.rows[row_idx].iter().map(|(&k, &v)| (k, v)).collect();
                r.sort_by_key(|&(k, _)| k); // Bland's rule determinism
                r
            };
            // Find a suitable nonbasic variable to pivot with.
            let mut pivot: Option<usize> = None;
            for &(xj, aij) in &row {
                let ok = if below {
                    (aij.is_pos() && self.can_increase(xj)?)
                        || (aij.is_neg() && self.can_decrease(xj)?)
                } else {
                    (aij.is_pos() && self.can_decrease(xj)?)
                        || (aij.is_neg() && self.can_increase(xj)?)
                };
                if ok {
                    pivot = Some(xj);
                    break;
                }
            }
            match pivot {
                None => {
                    // Conflict: the row's bounds imply infeasibility.
                    let mut lits = Vec::new();
                    if below {
                        lits.extend(self.lower[xi].and_then(|b| b.reason));
                        for &(xj, aij) in &row {
                            if aij.is_pos() {
                                lits.extend(self.upper[xj].and_then(|b| b.reason));
                            } else {
                                lits.extend(self.lower[xj].and_then(|b| b.reason));
                            }
                        }
                    } else {
                        lits.extend(self.upper[xi].and_then(|b| b.reason));
                        for &(xj, aij) in &row {
                            if aij.is_pos() {
                                lits.extend(self.lower[xj].and_then(|b| b.reason));
                            } else {
                                lits.extend(self.upper[xj].and_then(|b| b.reason));
                            }
                        }
                    }
                    lits.sort_unstable();
                    lits.dedup();
                    return Ok(Some(lits));
                }
                Some(xj) => {
                    let target = if below {
                        self.lower[xi].unwrap().value
                    } else {
                        self.upper[xi].unwrap().value
                    };
                    self.pivot_and_update(xi, xj, target)?;
                }
            }
        }
    }

    fn can_increase(&self, v: usize) -> Result<bool, Overflow> {
        match self.upper[v] {
            None => Ok(true),
            Some(u) => self.beta[v].lt(&u.value),
        }
    }

    fn can_decrease(&self, v: usize) -> Result<bool, Overflow> {
        match self.lower[v] {
            None => Ok(true),
            Some(l) => l.value.lt(&self.beta[v]),
        }
    }

    /// Pivot basic `xi` with nonbasic `xj` and set β(xi) = target.
    fn pivot_and_update(&mut self, xi: usize, xj: usize, target: Rat) -> Result<(), Overflow> {
        if let Some(m) = &self.meter {
            m.charge(Counter::SimplexPivots, 1);
        }
        let row_idx = self.basic_in[xi].unwrap();
        let aij = *self.rows[row_idx].get(&xj).expect("pivot coeff");
        let theta = target.sub(&self.beta[xi])?.div(&aij)?;
        self.beta[xi] = target;
        self.beta[xj] = self.beta[xj].add(&theta)?;
        // Update other basic vars' β.
        for r in 0..self.rows.len() {
            if r == row_idx {
                continue;
            }
            if let Some(&c) = self.rows[r].get(&xj) {
                let owner = self.row_owner[r];
                self.beta[owner] = self.beta[owner].add(&c.mul(&theta)?)?;
            }
        }
        // Rewrite the pivot row: xi = ... + aij*xj + ...  =>
        // xj = (xi - Σ_{k≠j} aik*xk) / aij
        let old_row = std::mem::take(&mut self.rows[row_idx]);
        let mut new_row: HashMap<usize, Rat> = HashMap::new();
        let inv = Rat::ONE.div(&aij)?;
        new_row.insert(xi, inv);
        for (&k, &c) in &old_row {
            if k != xj {
                new_row.insert(k, c.neg().mul(&inv)?);
            }
        }
        self.rows[row_idx] = new_row;
        self.row_owner[row_idx] = xj;
        self.basic_in[xi] = None;
        self.basic_in[xj] = Some(row_idx);
        // Substitute xj out of all other rows.
        for r in 0..self.rows.len() {
            if r == row_idx {
                continue;
            }
            if let Some(c) = self.rows[r].remove(&xj) {
                let pivot_row: Vec<(usize, Rat)> =
                    self.rows[row_idx].iter().map(|(&k, &v)| (k, v)).collect();
                for (k, v) in pivot_row {
                    let add = c.mul(&v)?;
                    let e = self.rows[r].entry(k).or_insert(Rat::ZERO);
                    *e = e.add(&add)?;
                }
                self.rows[r].retain(|_, v| !v.is_zero());
            }
        }
        Ok(())
    }

    /// Full check: rational feasibility then branch-and-bound integrality.
    pub fn check(&mut self, max_branch_nodes: usize) -> LiaOutcome {
        let mut budget = max_branch_nodes;
        match self.check_bb(&mut budget, 0) {
            Ok(LiaOutcome::Sat(model)) => LiaOutcome::Sat(model),
            Ok(other) => other,
            Err(Overflow) => LiaOutcome::Unknown,
        }
    }

    fn check_bb(&mut self, budget: &mut usize, depth: usize) -> Result<LiaOutcome, Overflow> {
        if *budget == 0 || depth > 200 {
            return Ok(LiaOutcome::Unknown);
        }
        if let Some(m) = &self.meter {
            m.charge(Counter::BranchSplits, 1);
            if m.check("lia") {
                return Ok(LiaOutcome::Unknown);
            }
        }
        *budget -= 1;
        if let Some(conflict) = self.check_rational()? {
            return Ok(LiaOutcome::Unsat(conflict));
        }
        // Find a fractional integer variable.
        let frac = (0..self.num_vars).find(|&v| self.is_int[v] && !self.beta[v].is_integer());
        let v = match frac {
            None => {
                let model = (0..self.num_vars).map(|v| self.beta[v].floor()).collect();
                return Ok(LiaOutcome::Sat(model));
            }
            Some(v) => v,
        };
        let val = self.beta[v];
        // Branch x <= floor(val).
        let mut left = self.clone();
        let fl = Rat::int(val.floor());
        let left_out = match left.set_upper(v, fl, None)? {
            Some(lits) => LiaOutcome::Unsat(lits),
            None => left.check_bb(budget, depth + 1)?,
        };
        if let LiaOutcome::Sat(_) = left_out {
            *self = left;
            return Ok(left_out);
        }
        // Branch x >= ceil(val).
        let mut right = self.clone();
        let ce = Rat::int(val.ceil());
        let right_out = match right.set_lower(v, ce, None)? {
            Some(lits) => LiaOutcome::Unsat(lits),
            None => right.check_bb(budget, depth + 1)?,
        };
        match (left_out, right_out) {
            (_, LiaOutcome::Sat(m)) => {
                *self = right;
                Ok(LiaOutcome::Sat(m))
            }
            (LiaOutcome::Unsat(mut a), LiaOutcome::Unsat(b)) => {
                a.extend(b);
                a.sort_unstable();
                a.dedup();
                Ok(LiaOutcome::Unsat(a))
            }
            _ => Ok(LiaOutcome::Unknown),
        }
    }

    /// Current rational value of a variable (valid after a Sat check).
    pub fn value(&self, v: LVar) -> Rat {
        self.beta[v.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: u32) -> Tag {
        n
    }

    #[test]
    fn rat_basics() {
        let half = Rat::new(1, 2).unwrap();
        let third = Rat::new(2, 6).unwrap();
        assert_eq!(third, Rat::new(1, 3).unwrap());
        let sum = half.add(&third).unwrap();
        assert_eq!(sum, Rat::new(5, 6).unwrap());
        assert_eq!(sum.floor(), 0);
        assert_eq!(sum.ceil(), 1);
        assert_eq!(Rat::new(-3, 2).unwrap().floor(), -2);
        assert_eq!(Rat::new(-3, 2).unwrap().ceil(), -1);
    }

    #[test]
    fn feasible_simple() {
        // x >= 1, x <= 5
        let mut lia = Lia::new();
        let x = lia.new_var();
        assert!(lia
            .assert_lower(&[(1, x)], 1, Some(lit(0)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, x)], 5, Some(lit(2)))
            .unwrap()
            .is_none());
        match lia.check(1000) {
            LiaOutcome::Sat(m) => {
                let v = m[x.0 as usize];
                assert!((1..=5).contains(&v));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_bounds_conflict() {
        let mut lia = Lia::new();
        let x = lia.new_var();
        assert!(lia
            .assert_lower(&[(1, x)], 10, Some(lit(0)))
            .unwrap()
            .is_none());
        let conflict = lia.assert_upper(&[(1, x)], 5, Some(lit(2))).unwrap();
        assert_eq!(conflict, Some(vec![lit(2), lit(0)]));
    }

    #[test]
    fn simplex_combination_infeasible() {
        // x + y >= 10, x <= 3, y <= 3  => infeasible
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        assert!(lia
            .assert_lower(&[(1, x), (1, y)], 10, Some(lit(0)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, x)], 3, Some(lit(2)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, y)], 3, Some(lit(4)))
            .unwrap()
            .is_none());
        match lia.check(1000) {
            LiaOutcome::Unsat(lits) => {
                assert!(lits.contains(&lit(0)));
                assert!(lits.contains(&lit(2)));
                assert!(lits.contains(&lit(4)));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn simplex_combination_feasible() {
        // x + y >= 5, x - y <= 1, y <= 4 has integer solutions (e.g., 2,3... wait x>=? )
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        assert!(lia
            .assert_lower(&[(1, x), (1, y)], 5, Some(lit(0)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, x), (-1, y)], 1, Some(lit(2)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, y)], 4, Some(lit(4)))
            .unwrap()
            .is_none());
        match lia.check(1000) {
            LiaOutcome::Sat(m) => {
                let (vx, vy) = (m[x.0 as usize], m[y.0 as usize]);
                assert!(vx + vy >= 5);
                assert!(vx - vy <= 1);
                assert!(vy <= 4);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_branch() {
        // 2x = 2y + 1 has no integer solution: 2x - 2y >= 1 and <= 1.
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        assert!(lia
            .assert_lower(&[(2, x), (-2, y)], 1, Some(lit(0)))
            .unwrap()
            .is_none());
        // gcd normalization detects the parity conflict eagerly: the reduced
        // bounds are x - y >= 1 and x - y <= 0.
        let conflict = lia
            .assert_upper(&[(2, x), (-2, y)], 1, Some(lit(2)))
            .unwrap();
        let lits = conflict.expect("eager conflict");
        assert!(lits.contains(&lit(0)) && lits.contains(&lit(2)));
    }

    #[test]
    fn integer_feasible_fractional_relaxation() {
        // 3x + 3y = 6 with x,y in [0,2] has integer solutions; relaxation is
        // immediately feasible but possibly fractional.
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        assert!(lia
            .assert_lower(&[(3, x), (3, y)], 6, Some(lit(0)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(3, x), (3, y)], 6, Some(lit(2)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_lower(&[(1, x)], 0, Some(lit(4)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, x)], 2, Some(lit(6)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_lower(&[(1, y)], 0, Some(lit(8)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, y)], 2, Some(lit(10)))
            .unwrap()
            .is_none());
        match lia.check(10_000) {
            LiaOutcome::Sat(m) => {
                assert_eq!(3 * m[x.0 as usize] + 3 * m[y.0 as usize], 6);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn chain_of_inequalities() {
        // x0 <= x1 <= ... <= x9, x0 >= 100, x9 <= 99 -> unsat
        let mut lia = Lia::new();
        let vars: Vec<LVar> = (0..10).map(|_| lia.new_var()).collect();
        for i in 0..9 {
            assert!(lia
                .assert_upper(
                    &[(1, vars[i]), (-1, vars[i + 1])],
                    0,
                    Some(lit(20 + 2 * i as u32))
                )
                .unwrap()
                .is_none());
        }
        assert!(lia
            .assert_lower(&[(1, vars[0])], 100, Some(lit(0)))
            .unwrap()
            .is_none());
        assert!(lia
            .assert_upper(&[(1, vars[9])], 99, Some(lit(2)))
            .unwrap()
            .is_none());
        match lia.check(10_000) {
            LiaOutcome::Unsat(lits) => {
                assert!(lits.contains(&lit(0)) && lits.contains(&lit(2)));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }
}
