//! Hash-consed term representation.
//!
//! All terms live in a [`TermStore`] and are referred to by [`TermId`].
//! Construction canonicalizes aggressively:
//!
//! - boolean connectives are flattened and constant-folded;
//! - integer-sorted terms are kept in a *linear normal form*
//!   ([`TermKind::Linear`]): an integer constant plus a sorted list of
//!   `coefficient * atom` monomials, where atoms are opaque (variables,
//!   applications, non-linear products, `div`/`mod` terms);
//! - comparisons are normalized to `t <= 0` with gcd-reduced coefficients.
//!
//! Canonicalization means syntactic equality subsumes a great deal of
//! rewriting, which both shrinks queries and reduces the need for
//! theory-combination reasoning downstream.

use std::collections::HashMap;
use std::fmt;

/// Interned symbol (function, variable, or sort name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

/// Identifier of an interned term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// Identifier of an interned sort.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SortId(pub u32);

/// Identifier of a declared datatype.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DatatypeId(pub u32);

/// SMT sorts.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    Bool,
    Int,
    BitVec(u32),
    /// A free (uninterpreted) sort.
    Uninterp(Symbol),
    /// An algebraic datatype declared in the store.
    Datatype(DatatypeId),
}

/// One constructor of a datatype: name plus field sorts.
#[derive(Clone, Debug)]
pub struct Constructor {
    pub name: Symbol,
    pub fields: Vec<(Symbol, SortId)>,
}

/// A declared algebraic datatype.
#[derive(Clone, Debug)]
pub struct Datatype {
    pub name: Symbol,
    pub constructors: Vec<Constructor>,
}

/// A declared function symbol.
#[derive(Clone, Debug)]
pub struct FuncDecl {
    pub name: Symbol,
    pub args: Vec<SortId>,
    pub ret: SortId,
}

/// Identifier of a declared function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FuncId(pub u32);

/// A bound variable occurring inside a quantifier body.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BoundVar {
    /// De Bruijn-free: bound vars are globally numbered within their quantifier.
    pub index: u32,
    pub sort: SortId,
}

/// Quantifier data.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Quant {
    pub is_forall: bool,
    /// Bound variables: `(index, sort)` pairs. Indices are globally unique
    /// across nested quantifiers (allocated via
    /// [`TermStore::fresh_bound_index`]), so substitution never captures.
    pub vars: Vec<(u32, SortId)>,
    /// Trigger groups: each inner vec is a multi-pattern.
    pub triggers: Vec<Vec<TermId>>,
    pub body: TermId,
    /// Name used in diagnostics and instantiation statistics.
    pub qid: Symbol,
}

/// Term structure. Construct via the `mk_*` methods on [`TermStore`], which
/// hash-cons and canonicalize; never build these directly.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermKind {
    BoolConst(bool),
    /// Canonical integer literal (only as a standalone constant; inside
    /// sums it is the `konst` of [`TermKind::Linear`]).
    IntConst(i128),
    BvConst {
        width: u32,
        value: u64,
    },
    /// Free constant (0-ary) of the given sort.
    Var(Symbol, SortId),
    /// Bound variable (only valid under a quantifier).
    Bound(BoundVar),
    /// Uninterpreted function application.
    App(FuncId, Vec<TermId>),
    Not(TermId),
    And(Vec<TermId>),
    Or(Vec<TermId>),
    Implies(TermId, TermId),
    /// Polymorphic equality; for Bool this is iff.
    Eq(TermId, TermId),
    Distinct(Vec<TermId>),
    Ite(TermId, TermId, TermId),
    /// Linear normal form: `konst + sum(coeff * atom)`. Atoms are sorted by
    /// id, have nonzero coefficients, and are themselves non-Linear,
    /// non-IntConst integer terms.
    Linear {
        konst: i128,
        monomials: Vec<(i128, TermId)>,
    },
    /// Non-linear product of two or more opaque atoms (sorted by id).
    NlMul(Vec<TermId>),
    /// Euclidean division (SMT-LIB `div` semantics).
    IntDiv(TermId, TermId),
    /// Euclidean remainder (SMT-LIB `mod` semantics; result in `[0, |d|)`).
    IntMod(TermId, TermId),
    /// `arg <= 0` (canonical comparison form).
    Le0(TermId),
    Quantifier(Quant),
    /// Datatype constructor application.
    DtCtor(DatatypeId, u32, Vec<TermId>),
    /// Datatype field selector: `(sel dt ctor_idx field_idx arg)`.
    DtSel(DatatypeId, u32, u32, TermId),
    /// Datatype tester: is `arg` built with constructor `ctor_idx`?
    DtTest(DatatypeId, u32, TermId),
    // Bit-vector operations (handled by bit-blasting).
    BvNot(TermId),
    BvAnd(TermId, TermId),
    BvOr(TermId, TermId),
    BvXor(TermId, TermId),
    BvAdd(TermId, TermId),
    BvSub(TermId, TermId),
    BvMul(TermId, TermId),
    BvUdiv(TermId, TermId),
    BvUrem(TermId, TermId),
    BvShl(TermId, TermId),
    BvLshr(TermId, TermId),
    BvUle(TermId, TermId),
    BvUlt(TermId, TermId),
}

/// Allocation watermark of a [`TermStore`], taken by [`TermStore::mark`]
/// and restored by [`TermStore::truncate_to`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreMark {
    terms: usize,
    sorts: usize,
    symbols: usize,
    funcs: usize,
    datatypes: usize,
    fresh_counter: u32,
}

/// Hash-consing term store plus symbol/sort/function tables.
pub struct TermStore {
    terms: Vec<TermKind>,
    sorts_of: Vec<SortId>,
    term_map: HashMap<TermKind, TermId>,
    sorts: Vec<Sort>,
    sort_map: HashMap<Sort, SortId>,
    symbols: Vec<String>,
    symbol_map: HashMap<String, Symbol>,
    funcs: Vec<FuncDecl>,
    func_map: HashMap<Symbol, FuncId>,
    datatypes: Vec<Datatype>,
    fresh_counter: u32,
}

impl Default for TermStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TermStore {
    pub fn new() -> Self {
        let mut s = TermStore {
            terms: Vec::new(),
            sorts_of: Vec::new(),
            term_map: HashMap::new(),
            sorts: Vec::new(),
            sort_map: HashMap::new(),
            symbols: Vec::new(),
            symbol_map: HashMap::new(),
            funcs: Vec::new(),
            func_map: HashMap::new(),
            datatypes: Vec::new(),
            fresh_counter: 0,
        };
        // Pre-intern the common sorts so `bool_sort()`/`int_sort()` are cheap.
        let _ = s.sort(Sort::Bool);
        let _ = s.sort(Sort::Int);
        s
    }

    // ------------------------------------------------------------------
    // Symbols, sorts, functions, datatypes
    // ------------------------------------------------------------------

    pub fn sym(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.symbol_map.get(name) {
            return s;
        }
        let s = Symbol(self.symbols.len() as u32);
        self.symbols.push(name.to_owned());
        self.symbol_map.insert(name.to_owned(), s);
        s
    }

    pub fn sym_name(&self, s: Symbol) -> &str {
        &self.symbols[s.0 as usize]
    }

    /// Allocate a globally fresh bound-variable index.
    pub fn fresh_bound_index(&mut self) -> u32 {
        self.fresh_counter += 1;
        // Bound indices share the fresh counter; offset to keep them large
        // and visibly distinct from hand-allocated small indices.
        self.fresh_counter + 1_000_000
    }

    /// Create a globally fresh symbol with the given prefix.
    pub fn fresh_sym(&mut self, prefix: &str) -> Symbol {
        self.fresh_counter += 1;
        let name = format!("{}!{}", prefix, self.fresh_counter);
        self.sym(&name)
    }

    pub fn sort(&mut self, s: Sort) -> SortId {
        if let Some(&id) = self.sort_map.get(&s) {
            return id;
        }
        let id = SortId(self.sorts.len() as u32);
        self.sorts.push(s.clone());
        self.sort_map.insert(s, id);
        id
    }

    pub fn sort_data(&self, id: SortId) -> &Sort {
        &self.sorts[id.0 as usize]
    }

    pub fn bool_sort(&self) -> SortId {
        SortId(0)
    }

    pub fn int_sort(&self) -> SortId {
        SortId(1)
    }

    pub fn bv_sort(&mut self, width: u32) -> SortId {
        self.sort(Sort::BitVec(width))
    }

    pub fn uninterp_sort(&mut self, name: &str) -> SortId {
        let sym = self.sym(name);
        self.sort(Sort::Uninterp(sym))
    }

    pub fn declare_fun(&mut self, name: &str, args: Vec<SortId>, ret: SortId) -> FuncId {
        let sym = self.sym(name);
        if let Some(&f) = self.func_map.get(&sym) {
            debug_assert_eq!(self.funcs[f.0 as usize].args, args, "redeclared {name}");
            return f;
        }
        let f = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncDecl {
            name: sym,
            args,
            ret,
        });
        self.func_map.insert(sym, f);
        f
    }

    pub fn lookup_fun(&self, name: &str) -> Option<FuncId> {
        self.symbol_map
            .get(name)
            .and_then(|s| self.func_map.get(s))
            .copied()
    }

    pub fn func(&self, f: FuncId) -> &FuncDecl {
        &self.funcs[f.0 as usize]
    }

    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    pub fn declare_datatype(
        &mut self,
        name: &str,
        ctors: Vec<(String, Vec<(String, SortId)>)>,
    ) -> DatatypeId {
        let name_sym = self.sym(name);
        let constructors = ctors
            .into_iter()
            .map(|(cn, fields)| {
                let cname = self.sym(&cn);
                let fields = fields
                    .into_iter()
                    .map(|(fname, fsort)| (self.sym(&fname), fsort))
                    .collect();
                Constructor {
                    name: cname,
                    fields,
                }
            })
            .collect();
        let id = DatatypeId(self.datatypes.len() as u32);
        self.datatypes.push(Datatype {
            name: name_sym,
            constructors,
        });
        // Also register the sort.
        let _ = self.sort(Sort::Datatype(id));
        id
    }

    /// Declare a datatype in two phases to allow recursion: reserve the
    /// name/sort first, then fill in the constructors (whose field sorts may
    /// reference the datatype's own sort).
    pub fn declare_datatype_deferred(&mut self, name: &str) -> DatatypeId {
        let name_sym = self.sym(name);
        let id = DatatypeId(self.datatypes.len() as u32);
        self.datatypes.push(Datatype {
            name: name_sym,
            constructors: Vec::new(),
        });
        let _ = self.sort(Sort::Datatype(id));
        id
    }

    /// Fill in the constructors of a deferred datatype declaration.
    ///
    /// # Panics
    /// Panics if the datatype already has constructors.
    pub fn set_datatype_ctors(
        &mut self,
        id: DatatypeId,
        ctors: Vec<(String, Vec<(String, SortId)>)>,
    ) {
        assert!(
            self.datatypes[id.0 as usize].constructors.is_empty(),
            "datatype constructors already set"
        );
        let constructors = ctors
            .into_iter()
            .map(|(cn, fields)| {
                let cname = self.sym(&cn);
                let fields = fields
                    .into_iter()
                    .map(|(fname, fsort)| (self.sym(&fname), fsort))
                    .collect();
                Constructor {
                    name: cname,
                    fields,
                }
            })
            .collect();
        self.datatypes[id.0 as usize].constructors = constructors;
    }

    pub fn datatype(&self, id: DatatypeId) -> &Datatype {
        &self.datatypes[id.0 as usize]
    }

    pub fn datatype_sort(&mut self, id: DatatypeId) -> SortId {
        self.sort(Sort::Datatype(id))
    }

    // ------------------------------------------------------------------
    // Core interning
    // ------------------------------------------------------------------

    fn intern(&mut self, kind: TermKind, sort: SortId) -> TermId {
        if let Some(&id) = self.term_map.get(&kind) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(kind.clone());
        self.sorts_of.push(sort);
        self.term_map.insert(kind, id);
        id
    }

    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.terms[t.0 as usize]
    }

    pub fn sort_of(&self, t: TermId) -> SortId {
        self.sorts_of[t.0 as usize]
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Watermark of the store's allocation state, for
    /// [`TermStore::truncate_to`]. Numeric ids (`TermId`, `FuncId`, …) are
    /// allocated densely, so restoring the allocation counters after a
    /// speculative encoding makes subsequent allocations reuse the *same*
    /// ids a fresh store would have produced — which matters because id
    /// values leak into search heuristics (theory scans sort by `TermId`;
    /// pattern indices order by `FuncId`).
    pub fn mark(&self) -> StoreMark {
        StoreMark {
            terms: self.terms.len(),
            sorts: self.sorts.len(),
            symbols: self.symbols.len(),
            funcs: self.funcs.len(),
            datatypes: self.datatypes.len(),
            fresh_counter: self.fresh_counter,
        }
    }

    /// Roll the store back to `mark`: everything interned, declared, or
    /// freshly named since is forgotten.
    pub fn truncate_to(&mut self, mark: &StoreMark) {
        self.terms.truncate(mark.terms);
        self.sorts_of.truncate(mark.terms);
        let n = mark.terms as u32;
        self.term_map.retain(|_, id| id.0 < n);
        self.sorts.truncate(mark.sorts);
        let n = mark.sorts as u32;
        self.sort_map.retain(|_, id| id.0 < n);
        self.symbols.truncate(mark.symbols);
        let n = mark.symbols as u32;
        self.symbol_map.retain(|_, s| s.0 < n);
        self.funcs.truncate(mark.funcs);
        let n = mark.funcs as u32;
        self.func_map.retain(|_, f| f.0 < n);
        self.datatypes.truncate(mark.datatypes);
        self.fresh_counter = mark.fresh_counter;
    }

    // ------------------------------------------------------------------
    // Leaf constructors
    // ------------------------------------------------------------------

    pub fn mk_bool(&mut self, b: bool) -> TermId {
        self.intern(TermKind::BoolConst(b), self.bool_sort())
    }

    pub fn mk_true(&mut self) -> TermId {
        self.mk_bool(true)
    }

    pub fn mk_false(&mut self) -> TermId {
        self.mk_bool(false)
    }

    pub fn mk_int(&mut self, v: i128) -> TermId {
        self.intern(TermKind::IntConst(v), self.int_sort())
    }

    pub fn mk_bv_const(&mut self, width: u32, value: u64) -> TermId {
        let value = mask_to_width(value, width);
        let sort = self.bv_sort(width);
        self.intern(TermKind::BvConst { width, value }, sort)
    }

    pub fn mk_var(&mut self, name: &str, sort: SortId) -> TermId {
        let sym = self.sym(name);
        self.intern(TermKind::Var(sym, sort), sort)
    }

    pub fn mk_fresh_var(&mut self, prefix: &str, sort: SortId) -> TermId {
        let sym = self.fresh_sym(prefix);
        self.intern(TermKind::Var(sym, sort), sort)
    }

    pub fn mk_bound(&mut self, index: u32, sort: SortId) -> TermId {
        self.intern(TermKind::Bound(BoundVar { index, sort }), sort)
    }

    pub fn mk_app(&mut self, f: FuncId, args: Vec<TermId>) -> TermId {
        let decl = &self.funcs[f.0 as usize];
        debug_assert_eq!(decl.args.len(), args.len());
        let ret = decl.ret;
        self.intern(TermKind::App(f, args), ret)
    }

    // ------------------------------------------------------------------
    // Boolean constructors (with folding / flattening)
    // ------------------------------------------------------------------

    pub fn mk_not(&mut self, t: TermId) -> TermId {
        match self.kind(t) {
            TermKind::BoolConst(b) => {
                let b = !*b;
                self.mk_bool(b)
            }
            TermKind::Not(inner) => *inner,
            _ => self.intern(TermKind::Not(t), self.bool_sort()),
        }
    }

    pub fn mk_and(&mut self, parts: Vec<TermId>) -> TermId {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match self.kind(p) {
                TermKind::BoolConst(true) => {}
                TermKind::BoolConst(false) => return self.mk_false(),
                TermKind::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.mk_true(),
            1 => flat[0],
            _ => self.intern(TermKind::And(flat), self.bool_sort()),
        }
    }

    pub fn mk_or(&mut self, parts: Vec<TermId>) -> TermId {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match self.kind(p) {
                TermKind::BoolConst(false) => {}
                TermKind::BoolConst(true) => return self.mk_true(),
                TermKind::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => self.mk_false(),
            1 => flat[0],
            _ => self.intern(TermKind::Or(flat), self.bool_sort()),
        }
    }

    pub fn mk_implies(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.kind(a), self.kind(b)) {
            (TermKind::BoolConst(false), _) => self.mk_true(),
            (TermKind::BoolConst(true), _) => b,
            (_, TermKind::BoolConst(true)) => self.mk_true(),
            (_, TermKind::BoolConst(false)) => self.mk_not(a),
            _ => self.intern(TermKind::Implies(a, b), self.bool_sort()),
        }
    }

    pub fn mk_iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_eq(a, b)
    }

    pub fn mk_eq(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.mk_true();
        }
        debug_assert_eq!(
            self.sort_of(a),
            self.sort_of(b),
            "mk_eq sort mismatch: {} vs {}",
            self.display(a),
            self.display(b)
        );
        // Constant folding.
        match (self.kind(a), self.kind(b)) {
            (TermKind::BoolConst(x), TermKind::BoolConst(y)) => {
                let v = x == y;
                return self.mk_bool(v);
            }
            (TermKind::IntConst(x), TermKind::IntConst(y)) => {
                let v = x == y;
                return self.mk_bool(v);
            }
            (TermKind::BvConst { value: x, .. }, TermKind::BvConst { value: y, .. }) => {
                let v = x == y;
                return self.mk_bool(v);
            }
            _ => {}
        }
        // Int equality: canonicalize as a - b compared against 0 to merge
        // syntactic variants, but keep the Eq node for EUF.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(TermKind::Eq(a, b), self.bool_sort())
    }

    pub fn mk_distinct(&mut self, mut parts: Vec<TermId>) -> TermId {
        parts.sort_unstable();
        parts.dedup_by(|a, b| a == b);
        if parts.len() < 2 {
            return self.mk_true();
        }
        if parts.len() == 2 {
            let eq = self.mk_eq(parts[0], parts[1]);
            return self.mk_not(eq);
        }
        self.intern(TermKind::Distinct(parts), self.bool_sort())
    }

    pub fn mk_ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        match self.kind(c) {
            TermKind::BoolConst(true) => return t,
            TermKind::BoolConst(false) => return e,
            _ => {}
        }
        if t == e {
            return t;
        }
        let sort = self.sort_of(t);
        debug_assert_eq!(sort, self.sort_of(e));
        if sort == self.bool_sort() {
            // Encode boolean ite with connectives so tseitin stays simple.
            let n = self.mk_not(c);
            let l = self.mk_implies(c, t);
            let r = self.mk_implies(n, e);
            return self.mk_and(vec![l, r]);
        }
        self.intern(TermKind::Ite(c, t, e), sort)
    }

    // ------------------------------------------------------------------
    // Integer arithmetic (linear normal form)
    // ------------------------------------------------------------------

    /// Decompose an int term into `(konst, monomials)`.
    fn as_linear(&self, t: TermId) -> (i128, Vec<(i128, TermId)>) {
        match self.kind(t) {
            TermKind::IntConst(k) => (*k, vec![]),
            TermKind::Linear { konst, monomials } => (*konst, monomials.clone()),
            _ => (0, vec![(1, t)]),
        }
    }

    fn mk_linear(&mut self, konst: i128, mut monomials: Vec<(i128, TermId)>) -> TermId {
        monomials.sort_by_key(|&(_, t)| t);
        // Merge duplicate atoms.
        let mut merged: Vec<(i128, TermId)> = Vec::with_capacity(monomials.len());
        for (c, t) in monomials {
            if let Some(last) = merged.last_mut() {
                if last.1 == t {
                    last.0 += c;
                    continue;
                }
            }
            merged.push((c, t));
        }
        merged.retain(|&(c, _)| c != 0);
        if merged.is_empty() {
            return self.mk_int(konst);
        }
        if konst == 0 && merged.len() == 1 && merged[0].0 == 1 {
            return merged[0].1;
        }
        self.intern(
            TermKind::Linear {
                konst,
                monomials: merged,
            },
            self.int_sort(),
        )
    }

    pub fn mk_add(&mut self, parts: Vec<TermId>) -> TermId {
        let mut konst: i128 = 0;
        let mut monomials = Vec::new();
        for p in parts {
            let (k, ms) = self.as_linear(p);
            konst += k;
            monomials.extend(ms);
        }
        self.mk_linear(konst, monomials)
    }

    pub fn mk_neg(&mut self, t: TermId) -> TermId {
        let (k, ms) = self.as_linear(t);
        let ms = ms.into_iter().map(|(c, a)| (-c, a)).collect();
        self.mk_linear(-k, ms)
    }

    pub fn mk_sub(&mut self, a: TermId, b: TermId) -> TermId {
        let nb = self.mk_neg(b);
        self.mk_add(vec![a, nb])
    }

    pub fn mk_mul(&mut self, a: TermId, b: TermId) -> TermId {
        let (ka, ma) = self.as_linear(a);
        let (kb, mb) = self.as_linear(b);
        // (ka + Σ ca*ta) * (kb + Σ cb*tb)
        let mut konst = ka * kb;
        let mut monomials: Vec<(i128, TermId)> = Vec::new();
        for &(ca, ta) in &ma {
            if kb != 0 {
                monomials.push((ca * kb, ta));
            }
        }
        for &(cb, tb) in &mb {
            if ka != 0 {
                monomials.push((cb * ka, tb));
            }
        }
        for &(ca, ta) in &ma {
            for &(cb, tb) in &mb {
                let atom = self.mk_nl_atom(ta, tb);
                match self.kind(atom) {
                    TermKind::IntConst(k) => konst += ca * cb * k,
                    _ => monomials.push((ca * cb, atom)),
                }
            }
        }
        self.mk_linear(konst, monomials)
    }

    /// Multiply two opaque atoms into a canonical non-linear product atom.
    fn mk_nl_atom(&mut self, a: TermId, b: TermId) -> TermId {
        let mut factors = Vec::new();
        for t in [a, b] {
            match self.kind(t) {
                TermKind::NlMul(fs) => factors.extend(fs.iter().copied()),
                _ => factors.push(t),
            }
        }
        factors.sort_unstable();
        self.intern(TermKind::NlMul(factors), self.int_sort())
    }

    pub fn mk_int_div(&mut self, a: TermId, b: TermId) -> TermId {
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            if *y != 0 {
                let v = x.div_euclid(*y);
                return self.mk_int(v);
            }
        }
        self.intern(TermKind::IntDiv(a, b), self.int_sort())
    }

    pub fn mk_int_mod(&mut self, a: TermId, b: TermId) -> TermId {
        if let (TermKind::IntConst(x), TermKind::IntConst(y)) = (self.kind(a), self.kind(b)) {
            if *y != 0 {
                let v = x.rem_euclid(*y);
                return self.mk_int(v);
            }
        }
        self.intern(TermKind::IntMod(a, b), self.int_sort())
    }

    /// `a <= b`, normalized to `a - b <= 0` with gcd-reduced coefficients.
    pub fn mk_le(&mut self, a: TermId, b: TermId) -> TermId {
        let diff = self.mk_sub(a, b);
        self.mk_le0(diff)
    }

    pub fn mk_lt(&mut self, a: TermId, b: TermId) -> TermId {
        // a < b  <=>  a - b + 1 <= 0  (integers)
        let diff = self.mk_sub(a, b);
        let one = self.mk_int(1);
        let shifted = self.mk_add(vec![diff, one]);
        self.mk_le0(shifted)
    }

    pub fn mk_ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_le(b, a)
    }

    pub fn mk_gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_lt(b, a)
    }

    fn mk_le0(&mut self, t: TermId) -> TermId {
        let (konst, monomials) = self.as_linear(t);
        if monomials.is_empty() {
            return self.mk_bool(konst <= 0);
        }
        // gcd-normalize: g = gcd of coefficients; konst' = ceil-div so that
        // the constraint is equivalent over the integers.
        let mut g: i128 = 0;
        for &(c, _) in &monomials {
            g = gcd(g, c.abs());
        }
        let (konst, monomials) = if g > 1 {
            let ms: Vec<_> = monomials.iter().map(|&(c, t)| (c / g, t)).collect();
            // Σ c_i t_i <= -konst  =>  Σ (c_i/g) t_i <= floor(-konst / g)
            let bound = (-konst).div_euclid(g);
            (-bound, ms)
        } else {
            (konst, monomials)
        };
        let lin = self.mk_linear(konst, monomials);
        if let TermKind::IntConst(k) = self.kind(lin) {
            let v = *k <= 0;
            return self.mk_bool(v);
        }
        self.intern(TermKind::Le0(lin), self.bool_sort())
    }

    // ------------------------------------------------------------------
    // Quantifiers
    // ------------------------------------------------------------------

    pub fn mk_forall(
        &mut self,
        vars: Vec<(u32, SortId)>,
        triggers: Vec<Vec<TermId>>,
        body: TermId,
        qid: &str,
    ) -> TermId {
        self.mk_quant(true, vars, triggers, body, qid)
    }

    pub fn mk_exists(
        &mut self,
        vars: Vec<(u32, SortId)>,
        triggers: Vec<Vec<TermId>>,
        body: TermId,
        qid: &str,
    ) -> TermId {
        self.mk_quant(false, vars, triggers, body, qid)
    }

    pub fn mk_quant(
        &mut self,
        is_forall: bool,
        vars: Vec<(u32, SortId)>,
        triggers: Vec<Vec<TermId>>,
        body: TermId,
        qid: &str,
    ) -> TermId {
        if vars.is_empty() {
            return body;
        }
        if let TermKind::BoolConst(_) = self.kind(body) {
            return body;
        }
        let qid = self.sym(qid);
        self.intern(
            TermKind::Quantifier(Quant {
                is_forall,
                vars,
                triggers,
                body,
                qid,
            }),
            self.bool_sort(),
        )
    }

    // ------------------------------------------------------------------
    // Datatypes
    // ------------------------------------------------------------------

    pub fn mk_dt_ctor(&mut self, dt: DatatypeId, ctor: u32, args: Vec<TermId>) -> TermId {
        let sort = self.datatype_sort(dt);
        self.intern(TermKind::DtCtor(dt, ctor, args), sort)
    }

    pub fn mk_dt_sel(&mut self, dt: DatatypeId, ctor: u32, field: u32, arg: TermId) -> TermId {
        // Fold selector-of-constructor.
        if let TermKind::DtCtor(dt2, c2, args) = self.kind(arg) {
            if *dt2 == dt && *c2 == ctor {
                return args[field as usize];
            }
        }
        let fsort =
            self.datatypes[dt.0 as usize].constructors[ctor as usize].fields[field as usize].1;
        self.intern(TermKind::DtSel(dt, ctor, field, arg), fsort)
    }

    pub fn mk_dt_test(&mut self, dt: DatatypeId, ctor: u32, arg: TermId) -> TermId {
        if let TermKind::DtCtor(dt2, c2, _) = self.kind(arg) {
            if *dt2 == dt {
                let v = *c2 == ctor;
                return self.mk_bool(v);
            }
        }
        self.intern(TermKind::DtTest(dt, ctor, arg), self.bool_sort())
    }

    // ------------------------------------------------------------------
    // Bit-vectors
    // ------------------------------------------------------------------

    pub fn bv_width(&self, t: TermId) -> u32 {
        match self.sort_data(self.sort_of(t)) {
            Sort::BitVec(w) => *w,
            s => panic!("bv_width on non-bv term of sort {s:?}"),
        }
    }

    fn mk_bv_bin(
        &mut self,
        a: TermId,
        b: TermId,
        mk: fn(TermId, TermId) -> TermKind,
        fold: fn(u64, u64, u32) -> u64,
    ) -> TermId {
        let w = self.bv_width(a);
        debug_assert_eq!(w, self.bv_width(b));
        if let (TermKind::BvConst { value: x, .. }, TermKind::BvConst { value: y, .. }) =
            (self.kind(a), self.kind(b))
        {
            let v = fold(*x, *y, w);
            return self.mk_bv_const(w, v);
        }
        let sort = self.bv_sort(w);
        self.intern(mk(a, b), sort)
    }

    pub fn mk_bv_not(&mut self, a: TermId) -> TermId {
        let w = self.bv_width(a);
        if let TermKind::BvConst { value, .. } = self.kind(a) {
            let v = !*value;
            return self.mk_bv_const(w, v);
        }
        let sort = self.bv_sort(w);
        self.intern(TermKind::BvNot(a), sort)
    }

    pub fn mk_bv_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvAnd, |x, y, _| x & y)
    }

    pub fn mk_bv_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvOr, |x, y, _| x | y)
    }

    pub fn mk_bv_xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvXor, |x, y, _| x ^ y)
    }

    pub fn mk_bv_add(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvAdd, |x, y, _| x.wrapping_add(y))
    }

    pub fn mk_bv_sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvSub, |x, y, _| x.wrapping_sub(y))
    }

    pub fn mk_bv_mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvMul, |x, y, _| x.wrapping_mul(y))
    }

    pub fn mk_bv_udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvUdiv, |x, y, w| {
            // SMT-LIB bvudiv: division by zero yields all-ones.
            x.checked_div(y).unwrap_or(mask_to_width(u64::MAX, w))
        })
    }

    pub fn mk_bv_urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(
            a,
            b,
            TermKind::BvUrem,
            |x, y, _| if y == 0 { x } else { x % y },
        )
    }

    pub fn mk_bv_shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvShl, |x, y, w| {
            if y >= w as u64 {
                0
            } else {
                x << y
            }
        })
    }

    pub fn mk_bv_lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_bv_bin(a, b, TermKind::BvLshr, |x, y, w| {
            if y >= w as u64 {
                0
            } else {
                mask_to_width(x, w) >> y
            }
        })
    }

    pub fn mk_bv_ule(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_width(a);
        if let (TermKind::BvConst { value: x, .. }, TermKind::BvConst { value: y, .. }) =
            (self.kind(a), self.kind(b))
        {
            let v = mask_to_width(*x, w) <= mask_to_width(*y, w);
            return self.mk_bool(v);
        }
        self.intern(TermKind::BvUle(a, b), self.bool_sort())
    }

    pub fn mk_bv_ult(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.bv_width(a);
        if let (TermKind::BvConst { value: x, .. }, TermKind::BvConst { value: y, .. }) =
            (self.kind(a), self.kind(b))
        {
            let v = mask_to_width(*x, w) < mask_to_width(*y, w);
            return self.mk_bool(v);
        }
        self.intern(TermKind::BvUlt(a, b), self.bool_sort())
    }

    // ------------------------------------------------------------------
    // Substitution & traversal
    // ------------------------------------------------------------------

    /// Substitute bound variables `Bound(i)` (for `i < subst.len()`) with
    /// the given ground terms. Used by quantifier instantiation; does not
    /// descend into nested quantifier bodies' *own* binders (instantiation
    /// shifts are avoided because nested quantifiers use disjoint indices —
    /// the VC layer numbers binders globally per quantifier).
    pub fn substitute(&mut self, t: TermId, subst: &[(u32, TermId)]) -> TermId {
        let mut cache: HashMap<TermId, TermId> = HashMap::new();
        self.subst_rec(t, subst, &mut cache)
    }

    fn subst_rec(
        &mut self,
        t: TermId,
        subst: &[(u32, TermId)],
        cache: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = cache.get(&t) {
            return r;
        }
        let kind = self.kind(t).clone();
        let result = match kind {
            TermKind::Bound(bv) => subst
                .iter()
                .find(|&&(i, _)| i == bv.index)
                .map(|&(_, r)| r)
                .unwrap_or(t),
            TermKind::BoolConst(_)
            | TermKind::IntConst(_)
            | TermKind::BvConst { .. }
            | TermKind::Var(..) => t,
            TermKind::App(f, args) => {
                let args = args
                    .iter()
                    .map(|&a| self.subst_rec(a, subst, cache))
                    .collect();
                self.mk_app(f, args)
            }
            TermKind::Not(a) => {
                let a = self.subst_rec(a, subst, cache);
                self.mk_not(a)
            }
            TermKind::And(parts) => {
                let parts = parts
                    .iter()
                    .map(|&a| self.subst_rec(a, subst, cache))
                    .collect();
                self.mk_and(parts)
            }
            TermKind::Or(parts) => {
                let parts = parts
                    .iter()
                    .map(|&a| self.subst_rec(a, subst, cache))
                    .collect();
                self.mk_or(parts)
            }
            TermKind::Implies(a, b) => {
                let a = self.subst_rec(a, subst, cache);
                let b = self.subst_rec(b, subst, cache);
                self.mk_implies(a, b)
            }
            TermKind::Eq(a, b) => {
                let a = self.subst_rec(a, subst, cache);
                let b = self.subst_rec(b, subst, cache);
                self.mk_eq(a, b)
            }
            TermKind::Distinct(parts) => {
                let parts = parts
                    .iter()
                    .map(|&a| self.subst_rec(a, subst, cache))
                    .collect();
                self.mk_distinct(parts)
            }
            TermKind::Ite(c, a, b) => {
                let c = self.subst_rec(c, subst, cache);
                let a = self.subst_rec(a, subst, cache);
                let b = self.subst_rec(b, subst, cache);
                self.mk_ite(c, a, b)
            }
            TermKind::Linear { konst, monomials } => {
                let mut parts = vec![self.mk_int(konst)];
                for (c, a) in monomials {
                    let a = self.subst_rec(a, subst, cache);
                    let c = self.mk_int(c);
                    parts.push(self.mk_mul(c, a));
                }
                self.mk_add(parts)
            }
            TermKind::NlMul(factors) => {
                let mut acc = self.mk_int(1);
                for f in factors {
                    let f = self.subst_rec(f, subst, cache);
                    acc = self.mk_mul(acc, f);
                }
                acc
            }
            TermKind::IntDiv(a, b) => {
                let a = self.subst_rec(a, subst, cache);
                let b = self.subst_rec(b, subst, cache);
                self.mk_int_div(a, b)
            }
            TermKind::IntMod(a, b) => {
                let a = self.subst_rec(a, subst, cache);
                let b = self.subst_rec(b, subst, cache);
                self.mk_int_mod(a, b)
            }
            TermKind::Le0(a) => {
                let a = self.subst_rec(a, subst, cache);
                let zero = self.mk_int(0);
                self.mk_le(a, zero)
            }
            TermKind::Quantifier(q) => {
                // Binders use indices disjoint from the substitution domain
                // (global numbering); substitute in body and triggers.
                let body = self.subst_rec(q.body, subst, cache);
                let triggers = q
                    .triggers
                    .iter()
                    .map(|grp| {
                        grp.iter()
                            .map(|&p| self.subst_rec(p, subst, cache))
                            .collect()
                    })
                    .collect();
                let qid_name = self.sym_name(q.qid).to_owned();
                self.mk_quant(q.is_forall, q.vars.clone(), triggers, body, &qid_name)
            }
            TermKind::DtCtor(dt, c, args) => {
                let args = args
                    .iter()
                    .map(|&a| self.subst_rec(a, subst, cache))
                    .collect();
                self.mk_dt_ctor(dt, c, args)
            }
            TermKind::DtSel(dt, c, f, a) => {
                let a = self.subst_rec(a, subst, cache);
                self.mk_dt_sel(dt, c, f, a)
            }
            TermKind::DtTest(dt, c, a) => {
                let a = self.subst_rec(a, subst, cache);
                self.mk_dt_test(dt, c, a)
            }
            TermKind::BvNot(a) => {
                let a = self.subst_rec(a, subst, cache);
                self.mk_bv_not(a)
            }
            TermKind::BvAnd(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_and(a, b)
            }
            TermKind::BvOr(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_or(a, b)
            }
            TermKind::BvXor(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_xor(a, b)
            }
            TermKind::BvAdd(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_add(a, b)
            }
            TermKind::BvSub(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_sub(a, b)
            }
            TermKind::BvMul(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_mul(a, b)
            }
            TermKind::BvUdiv(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_udiv(a, b)
            }
            TermKind::BvUrem(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_urem(a, b)
            }
            TermKind::BvShl(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_shl(a, b)
            }
            TermKind::BvLshr(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_lshr(a, b)
            }
            TermKind::BvUle(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_ule(a, b)
            }
            TermKind::BvUlt(a, b) => {
                let (a, b) = (
                    self.subst_rec(a, subst, cache),
                    self.subst_rec(b, subst, cache),
                );
                self.mk_bv_ult(a, b)
            }
        };
        cache.insert(t, result);
        result
    }

    /// Immediate children of a term (for generic traversals).
    pub fn children(&self, t: TermId) -> Vec<TermId> {
        match self.kind(t) {
            TermKind::BoolConst(_)
            | TermKind::IntConst(_)
            | TermKind::BvConst { .. }
            | TermKind::Var(..)
            | TermKind::Bound(_) => vec![],
            TermKind::App(_, args)
            | TermKind::And(args)
            | TermKind::Or(args)
            | TermKind::Distinct(args) => args.clone(),
            TermKind::Not(a) | TermKind::Le0(a) | TermKind::BvNot(a) => vec![*a],
            TermKind::Implies(a, b) | TermKind::Eq(a, b) => vec![*a, *b],
            TermKind::Ite(c, a, b) => vec![*c, *a, *b],
            TermKind::Linear { monomials, .. } => monomials.iter().map(|&(_, t)| t).collect(),
            TermKind::NlMul(fs) => fs.clone(),
            TermKind::IntDiv(a, b) | TermKind::IntMod(a, b) => vec![*a, *b],
            TermKind::Quantifier(q) => vec![q.body],
            TermKind::DtCtor(_, _, args) => args.clone(),
            TermKind::DtSel(_, _, _, a) | TermKind::DtTest(_, _, a) => vec![*a],
            TermKind::BvAnd(a, b)
            | TermKind::BvOr(a, b)
            | TermKind::BvXor(a, b)
            | TermKind::BvAdd(a, b)
            | TermKind::BvSub(a, b)
            | TermKind::BvMul(a, b)
            | TermKind::BvUdiv(a, b)
            | TermKind::BvUrem(a, b)
            | TermKind::BvShl(a, b)
            | TermKind::BvLshr(a, b)
            | TermKind::BvUle(a, b)
            | TermKind::BvUlt(a, b) => vec![*a, *b],
        }
    }

    /// Rebuild a term with new children (in the order [`Self::children`]
    /// returns them), re-running canonicalization. Used by generic rewriting
    /// passes (ite-lifting, EPR abstraction, evaluation).
    ///
    /// # Panics
    /// Panics if `kids.len()` differs from the term's child count.
    pub fn rebuild(&mut self, t: TermId, kids: &[TermId]) -> TermId {
        match self.kind(t).clone() {
            TermKind::BoolConst(_)
            | TermKind::IntConst(_)
            | TermKind::BvConst { .. }
            | TermKind::Var(..)
            | TermKind::Bound(_) => {
                debug_assert!(kids.is_empty());
                t
            }
            TermKind::App(f, _) => self.mk_app(f, kids.to_vec()),
            TermKind::And(_) => self.mk_and(kids.to_vec()),
            TermKind::Or(_) => self.mk_or(kids.to_vec()),
            TermKind::Distinct(_) => self.mk_distinct(kids.to_vec()),
            TermKind::Not(_) => self.mk_not(kids[0]),
            TermKind::Le0(_) => {
                let zero = self.mk_int(0);
                self.mk_le(kids[0], zero)
            }
            TermKind::BvNot(_) => self.mk_bv_not(kids[0]),
            TermKind::Implies(..) => self.mk_implies(kids[0], kids[1]),
            TermKind::Eq(..) => self.mk_eq(kids[0], kids[1]),
            TermKind::Ite(..) => self.mk_ite(kids[0], kids[1], kids[2]),
            TermKind::Linear { konst, monomials } => {
                let mut parts = vec![self.mk_int(konst)];
                for (i, (c, _)) in monomials.iter().enumerate() {
                    let coeff = self.mk_int(*c);
                    let m = self.mk_mul(coeff, kids[i]);
                    parts.push(m);
                }
                self.mk_add(parts)
            }
            TermKind::NlMul(_) => {
                let mut acc = self.mk_int(1);
                for &k in kids {
                    acc = self.mk_mul(acc, k);
                }
                acc
            }
            TermKind::IntDiv(..) => self.mk_int_div(kids[0], kids[1]),
            TermKind::IntMod(..) => self.mk_int_mod(kids[0], kids[1]),
            TermKind::Quantifier(q) => {
                let qid = self.sym_name(q.qid).to_owned();
                self.mk_quant(
                    q.is_forall,
                    q.vars.clone(),
                    q.triggers.clone(),
                    kids[0],
                    &qid,
                )
            }
            TermKind::DtCtor(dt, c, _) => self.mk_dt_ctor(dt, c, kids.to_vec()),
            TermKind::DtSel(dt, c, f, _) => self.mk_dt_sel(dt, c, f, kids[0]),
            TermKind::DtTest(dt, c, _) => self.mk_dt_test(dt, c, kids[0]),
            TermKind::BvAnd(..) => self.mk_bv_and(kids[0], kids[1]),
            TermKind::BvOr(..) => self.mk_bv_or(kids[0], kids[1]),
            TermKind::BvXor(..) => self.mk_bv_xor(kids[0], kids[1]),
            TermKind::BvAdd(..) => self.mk_bv_add(kids[0], kids[1]),
            TermKind::BvSub(..) => self.mk_bv_sub(kids[0], kids[1]),
            TermKind::BvMul(..) => self.mk_bv_mul(kids[0], kids[1]),
            TermKind::BvUdiv(..) => self.mk_bv_udiv(kids[0], kids[1]),
            TermKind::BvUrem(..) => self.mk_bv_urem(kids[0], kids[1]),
            TermKind::BvShl(..) => self.mk_bv_shl(kids[0], kids[1]),
            TermKind::BvLshr(..) => self.mk_bv_lshr(kids[0], kids[1]),
            TermKind::BvUle(..) => self.mk_bv_ule(kids[0], kids[1]),
            TermKind::BvUlt(..) => self.mk_bv_ult(kids[0], kids[1]),
        }
    }

    /// Does the term contain any bound variable (i.e., is it non-ground in
    /// a quantifier body)?
    pub fn has_bound_var(&self, t: TermId) -> bool {
        match self.kind(t) {
            TermKind::Bound(_) => true,
            _ => self.children(t).into_iter().any(|c| self.has_bound_var(c)),
        }
    }

    /// Human-readable rendering for diagnostics.
    pub fn display(&self, t: TermId) -> TermDisplay<'_> {
        TermDisplay {
            store: self,
            term: t,
        }
    }
}

/// Display adapter for terms.
pub struct TermDisplay<'a> {
    store: &'a TermStore,
    term: TermId,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(self.store, self.term, f)
    }
}

fn write_term(s: &TermStore, t: TermId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match s.kind(t) {
        TermKind::BoolConst(b) => write!(f, "{b}"),
        TermKind::IntConst(k) => write!(f, "{k}"),
        TermKind::BvConst { width, value } => {
            write!(
                f,
                "#b{value:0>width$b}",
                value = value,
                width = *width as usize
            )
        }
        TermKind::Var(sym, _) => write!(f, "{}", s.sym_name(*sym)),
        TermKind::Bound(bv) => write!(f, "?{}", bv.index),
        TermKind::App(func, args) => {
            write!(f, "({}", s.sym_name(s.func(*func).name))?;
            for &a in args {
                write!(f, " ")?;
                write_term(s, a, f)?;
            }
            write!(f, ")")
        }
        TermKind::Not(a) => {
            write!(f, "(not ")?;
            write_term(s, *a, f)?;
            write!(f, ")")
        }
        TermKind::And(parts) => write_nary(s, "and", parts, f),
        TermKind::Or(parts) => write_nary(s, "or", parts, f),
        TermKind::Implies(a, b) => write_bin(s, "=>", *a, *b, f),
        TermKind::Eq(a, b) => write_bin(s, "=", *a, *b, f),
        TermKind::Distinct(parts) => write_nary(s, "distinct", parts, f),
        TermKind::Ite(c, a, b) => {
            write!(f, "(ite ")?;
            write_term(s, *c, f)?;
            write!(f, " ")?;
            write_term(s, *a, f)?;
            write!(f, " ")?;
            write_term(s, *b, f)?;
            write!(f, ")")
        }
        TermKind::Linear { konst, monomials } => {
            write!(f, "(+ {konst}")?;
            for &(c, a) in monomials {
                write!(f, " (* {c} ")?;
                write_term(s, a, f)?;
                write!(f, ")")?;
            }
            write!(f, ")")
        }
        TermKind::NlMul(parts) => write_nary(s, "*", parts, f),
        TermKind::IntDiv(a, b) => write_bin(s, "div", *a, *b, f),
        TermKind::IntMod(a, b) => write_bin(s, "mod", *a, *b, f),
        TermKind::Le0(a) => {
            write!(f, "(<= ")?;
            write_term(s, *a, f)?;
            write!(f, " 0)")
        }
        TermKind::Quantifier(q) => {
            write!(f, "({} (", if q.is_forall { "forall" } else { "exists" })?;
            for (i, (idx, _)) in q.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "?{idx}")?;
            }
            write!(f, ") ")?;
            write_term(s, q.body, f)?;
            write!(f, ")")
        }
        TermKind::DtCtor(dt, c, args) => {
            let ctor = &s.datatype(*dt).constructors[*c as usize];
            write!(f, "({}", s.sym_name(ctor.name))?;
            for &a in args {
                write!(f, " ")?;
                write_term(s, a, f)?;
            }
            write!(f, ")")
        }
        TermKind::DtSel(dt, c, fi, a) => {
            let ctor = &s.datatype(*dt).constructors[*c as usize];
            write!(f, "({} ", s.sym_name(ctor.fields[*fi as usize].0))?;
            write_term(s, *a, f)?;
            write!(f, ")")
        }
        TermKind::DtTest(dt, c, a) => {
            let ctor = &s.datatype(*dt).constructors[*c as usize];
            write!(f, "(is-{} ", s.sym_name(ctor.name))?;
            write_term(s, *a, f)?;
            write!(f, ")")
        }
        TermKind::BvNot(a) => {
            write!(f, "(bvnot ")?;
            write_term(s, *a, f)?;
            write!(f, ")")
        }
        TermKind::BvAnd(a, b) => write_bin(s, "bvand", *a, *b, f),
        TermKind::BvOr(a, b) => write_bin(s, "bvor", *a, *b, f),
        TermKind::BvXor(a, b) => write_bin(s, "bvxor", *a, *b, f),
        TermKind::BvAdd(a, b) => write_bin(s, "bvadd", *a, *b, f),
        TermKind::BvSub(a, b) => write_bin(s, "bvsub", *a, *b, f),
        TermKind::BvMul(a, b) => write_bin(s, "bvmul", *a, *b, f),
        TermKind::BvUdiv(a, b) => write_bin(s, "bvudiv", *a, *b, f),
        TermKind::BvUrem(a, b) => write_bin(s, "bvurem", *a, *b, f),
        TermKind::BvShl(a, b) => write_bin(s, "bvshl", *a, *b, f),
        TermKind::BvLshr(a, b) => write_bin(s, "bvlshr", *a, *b, f),
        TermKind::BvUle(a, b) => write_bin(s, "bvule", *a, *b, f),
        TermKind::BvUlt(a, b) => write_bin(s, "bvult", *a, *b, f),
    }
}

fn write_nary(
    s: &TermStore,
    op: &str,
    parts: &[TermId],
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    write!(f, "({op}")?;
    for &p in parts {
        write!(f, " ")?;
        write_term(s, p, f)?;
    }
    write!(f, ")")
}

fn write_bin(
    s: &TermStore,
    op: &str,
    a: TermId,
    b: TermId,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    write!(f, "({op} ")?;
    write_term(s, a, f)?;
    write!(f, " ")?;
    write_term(s, b, f)?;
    write!(f, ")")
}

pub(crate) fn mask_to_width(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

pub(crate) fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut s = TermStore::new();
        let x = s.mk_var("x", s.int_sort());
        let y = s.mk_var("y", s.int_sort());
        let a = s.mk_add(vec![x, y]);
        let b = s.mk_add(vec![y, x]);
        assert_eq!(a, b, "addition canonicalizes operand order");
    }

    #[test]
    fn linear_normal_form_merges() {
        let mut s = TermStore::new();
        let x = s.mk_var("x", s.int_sort());
        // x + x + 1 - 1 == 2*x
        let one = s.mk_int(1);
        let sum = s.mk_add(vec![x, x, one]);
        let sum = s.mk_sub(sum, one);
        let two = s.mk_int(2);
        let twice = s.mk_mul(two, x);
        assert_eq!(sum, twice);
    }

    #[test]
    fn x_plus_zero_is_x() {
        let mut s = TermStore::new();
        let x = s.mk_var("x", s.int_sort());
        let zero = s.mk_int(0);
        assert_eq!(s.mk_add(vec![x, zero]), x);
    }

    #[test]
    fn mul_distributes_and_folds() {
        let mut s = TermStore::new();
        let x = s.mk_var("x", s.int_sort());
        let y = s.mk_var("y", s.int_sort());
        // (x + 2) * (y + 3) == x*y + 3x + 2y + 6
        let two = s.mk_int(2);
        let three = s.mk_int(3);
        let l = s.mk_add(vec![x, two]);
        let r = s.mk_add(vec![y, three]);
        let prod = s.mk_mul(l, r);
        let xy = s.mk_mul(x, y);
        let t3x = s.mk_mul(three, x);
        let t2y = s.mk_mul(two, y);
        let six = s.mk_int(6);
        let expect = s.mk_add(vec![xy, t3x, t2y, six]);
        assert_eq!(prod, expect);
    }

    #[test]
    fn nl_product_is_commutative() {
        let mut s = TermStore::new();
        let x = s.mk_var("x", s.int_sort());
        let y = s.mk_var("y", s.int_sort());
        assert_eq!(s.mk_mul(x, y), s.mk_mul(y, x));
        // And associates: (x*y)*x == x*(x*y)
        let xy = s.mk_mul(x, y);
        assert_eq!(s.mk_mul(xy, x), s.mk_mul(x, xy));
    }

    #[test]
    fn le_normalizes_gcd() {
        let mut s = TermStore::new();
        let x = s.mk_var("x", s.int_sort());
        // 2x <= 5  =>  x <= 2 over integers
        let two = s.mk_int(2);
        let five = s.mk_int(5);
        let twox = s.mk_mul(two, x);
        let a = s.mk_le(twox, five);
        let twob = s.mk_int(2);
        let b = s.mk_le(x, twob);
        assert_eq!(a, b);
    }

    #[test]
    fn bool_folding() {
        let mut s = TermStore::new();
        let p = s.mk_var("p", s.bool_sort());
        let t = s.mk_true();
        let fa = s.mk_false();
        assert_eq!(s.mk_and(vec![p, t]), p);
        assert_eq!(s.mk_and(vec![p, fa]), s.mk_false());
        assert_eq!(s.mk_or(vec![p, fa]), p);
        let np = s.mk_not(p);
        assert_eq!(s.mk_not(np), p);
    }

    #[test]
    fn ite_on_bool_becomes_connectives() {
        let mut s = TermStore::new();
        let c = s.mk_var("c", s.bool_sort());
        let p = s.mk_var("p", s.bool_sort());
        let q = s.mk_var("q", s.bool_sort());
        let ite = s.mk_ite(c, p, q);
        assert_eq!(s.sort_of(ite), s.bool_sort());
        assert!(!matches!(s.kind(ite), TermKind::Ite(..)));
    }

    #[test]
    fn selector_of_ctor_folds() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let dt = s.declare_datatype(
            "Pair",
            vec![("mk".into(), vec![("fst".into(), int), ("snd".into(), int)])],
        );
        let a = s.mk_int(7);
        let b = s.mk_int(9);
        let pair = s.mk_dt_ctor(dt, 0, vec![a, b]);
        assert_eq!(s.mk_dt_sel(dt, 0, 0, pair), a);
        assert_eq!(s.mk_dt_sel(dt, 0, 1, pair), b);
        let test = s.mk_dt_test(dt, 0, pair);
        assert_eq!(test, s.mk_true());
    }

    #[test]
    fn bv_const_folding() {
        let mut s = TermStore::new();
        let a = s.mk_bv_const(8, 0xF0);
        let b = s.mk_bv_const(8, 0x0F);
        let or = s.mk_bv_or(a, b);
        assert_eq!(or, s.mk_bv_const(8, 0xFF));
        let one = s.mk_bv_const(8, 1);
        let add = s.mk_bv_add(or, one);
        assert_eq!(add, s.mk_bv_const(8, 0));
    }

    #[test]
    fn substitute_bound_vars() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let b0 = s.mk_bound(0, int);
        let one = s.mk_int(1);
        let body = s.mk_add(vec![b0, one]);
        let seven = s.mk_int(7);
        let inst = s.substitute(body, &[(0, seven)]);
        assert_eq!(inst, s.mk_int(8));
    }
}
