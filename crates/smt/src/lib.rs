//! # veris-smt — a from-scratch SMT solver for program verification
//!
//! This crate is the solver substrate of the `veris` project (a
//! reproduction of *Verus: A Practical Foundation for Systems
//! Verification*, SOSP'24). It plays the role Z3 plays for Verus:
//!
//! - [`term`] — hash-consed, aggressively canonicalized term DAG;
//! - [`sat`] — CDCL SAT core (watched literals, 1UIP learning, VSIDS,
//!   Luby restarts) with a theory final-check hook;
//! - [`euf`] — congruence closure with proof-forest explanations;
//! - [`lia`] — linear integer arithmetic (rational simplex +
//!   branch-and-bound) with Farkas-style conflict sets;
//! - [`bv`] — bit-vector reasoning by bit-blasting (backs `by(bit_vector)`);
//! - [`quant`] — trigger inference (minimal vs broad policies) and
//!   e-matching;
//! - [`solver`] — the DPLL(T) orchestrator with round-based quantifier
//!   instantiation and an EPR saturation mode;
//! - [`printer`] — SMT-LIB rendering, used for the query-size metric.
//!
//! ## Quick example
//!
//! ```
//! use veris_smt::solver::{Config, SmtResult, Solver};
//!
//! let mut s = Solver::new(Config::default());
//! let int = s.store.int_sort();
//! let x = s.store.mk_var("x", int);
//! let one = s.store.mk_int(1);
//! let zero = s.store.mk_int(0);
//! // x >= 1 && x + 1 <= 0 is unsatisfiable.
//! let ge = s.store.mk_ge(x, one);
//! let x1 = s.store.mk_add(vec![x, one]);
//! let le = s.store.mk_le(x1, zero);
//! s.assert(ge);
//! s.assert(le);
//! assert!(matches!(s.check(), SmtResult::Unsat));
//! ```

pub mod bv;
pub mod euf;
pub mod lia;
pub mod printer;
pub mod quant;
pub mod sat;
pub mod solver;
pub mod term;

pub use solver::{Config, Model, SmtResult, Solver, Stats};
pub use term::{DatatypeId, FuncId, Sort, SortId, TermId, TermKind, TermStore};
