//! Quantifier instantiation: trigger inference and e-matching.
//!
//! Two trigger-selection policies model the design axis the paper's §3.1
//! describes: [`TriggerPolicy::Minimal`] (Verus-style — as few triggers as
//! possible, better scaling) and [`TriggerPolicy::Broad`] (Dafny-style —
//! every candidate subterm, more instantiations, more solver work).

use std::collections::{HashMap, HashSet};

use crate::term::{Quant, SortId, TermId, TermKind, TermStore};

/// Trigger-selection policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriggerPolicy {
    /// Fewest trigger groups that cover all bound variables.
    Minimal,
    /// Every covering candidate becomes its own trigger group.
    Broad,
}

/// Collect candidate trigger subterms of `body`: applications (and other
/// matchable shapes) that mention at least one bound variable and are not
/// themselves a bare bound variable.
fn candidates(store: &TermStore, body: TermId, out: &mut Vec<TermId>) {
    let mut seen: HashSet<TermId> = HashSet::new();
    candidates_rec(store, body, out, &mut seen);
}

fn candidates_rec(
    store: &TermStore,
    body: TermId,
    out: &mut Vec<TermId>,
    seen: &mut HashSet<TermId>,
) {
    let matchable = matches!(
        store.kind(body),
        TermKind::App(..)
            | TermKind::DtSel(..)
            | TermKind::DtCtor(..)
            | TermKind::DtTest(..)
            | TermKind::IntDiv(..)
            | TermKind::IntMod(..)
    );
    if matchable && store.has_bound_var(body) && seen.insert(body) {
        out.push(body);
    }
    for c in store.children(body) {
        candidates_rec(store, c, out, seen);
    }
}

fn bound_vars_of(store: &TermStore, t: TermId, acc: &mut Vec<u32>) {
    let mut seen: HashSet<u32> = acc.iter().copied().collect();
    bound_vars_rec(store, t, acc, &mut seen);
}

fn bound_vars_rec(store: &TermStore, t: TermId, acc: &mut Vec<u32>, seen: &mut HashSet<u32>) {
    if let TermKind::Bound(bv) = store.kind(t) {
        if seen.insert(bv.index) {
            acc.push(bv.index);
        }
    }
    for c in store.children(t) {
        bound_vars_rec(store, c, acc, seen);
    }
}

fn term_size(store: &TermStore, t: TermId) -> usize {
    1 + store
        .children(t)
        .into_iter()
        .map(|c| term_size(store, c))
        .sum::<usize>()
}

/// Outcome of trigger inference, with the fallback made explicit.
#[derive(Clone, Debug)]
pub struct InferredTriggers {
    pub groups: Vec<Vec<TermId>>,
    /// No covering candidate existed (every bound-variable occurrence sits
    /// under interpreted ops), so the whole quantifier body was used as the
    /// trigger of last resort. Such a trigger has no matchable head, so the
    /// quantifier stays un-instantiable — but the condition is now a defined,
    /// observable outcome callers can warn about instead of a silent empty
    /// trigger set.
    pub whole_body_fallback: bool,
}

/// Infer trigger groups for a quantifier over `vars` with the given body.
///
/// Every returned group covers all bound variables. When no covering set
/// exists the whole body becomes the single trigger group and
/// [`InferredTriggers::whole_body_fallback`] is set.
pub fn infer_triggers_detailed(
    store: &TermStore,
    vars: &[(u32, SortId)],
    body: TermId,
    policy: TriggerPolicy,
) -> InferredTriggers {
    let mut cands = Vec::new();
    candidates(store, body, &mut cands);
    // Drop candidates that are strictly contained in another candidate with
    // the same variable coverage? Keep simple: no.
    let var_set: Vec<u32> = vars.iter().map(|&(i, _)| i).collect();
    let covers = |t: TermId| -> Vec<u32> {
        let mut vs = Vec::new();
        bound_vars_of(store, t, &mut vs);
        vs.retain(|v| var_set.contains(v));
        vs
    };
    let full: Vec<TermId> = cands
        .iter()
        .copied()
        .filter(|&t| covers(t).len() == var_set.len())
        .collect();
    let groups = match policy {
        TriggerPolicy::Broad => {
            let mut groups: Vec<Vec<TermId>> = full.iter().map(|&t| vec![t]).collect();
            if groups.is_empty() {
                if let Some(g) = cover_greedy(store, &cands, &var_set, &covers) {
                    groups.push(g);
                }
            }
            groups
        }
        TriggerPolicy::Minimal => {
            if let Some(&best) = full.iter().min_by_key(|&&t| (term_size(store, t), t.0)) {
                vec![vec![best]]
            } else if let Some(g) = cover_greedy(store, &cands, &var_set, &covers) {
                vec![g]
            } else {
                vec![]
            }
        }
    };
    if groups.is_empty() {
        InferredTriggers {
            groups: vec![vec![body]],
            whole_body_fallback: true,
        }
    } else {
        InferredTriggers {
            groups,
            whole_body_fallback: false,
        }
    }
}

/// Trigger groups only (see [`infer_triggers_detailed`] for the fallback
/// flag).
pub fn infer_triggers(
    store: &TermStore,
    vars: &[(u32, SortId)],
    body: TermId,
    policy: TriggerPolicy,
) -> Vec<Vec<TermId>> {
    infer_triggers_detailed(store, vars, body, policy).groups
}

/// Greedy multi-pattern cover: pick candidates until all vars are covered.
fn cover_greedy(
    store: &TermStore,
    cands: &[TermId],
    var_set: &[u32],
    covers: &dyn Fn(TermId) -> Vec<u32>,
) -> Option<Vec<TermId>> {
    let mut remaining: Vec<u32> = var_set.to_vec();
    let mut group = Vec::new();
    while !remaining.is_empty() {
        let best = cands
            .iter()
            .copied()
            .filter(|&t| !group.contains(&t))
            .max_by_key(|&t| {
                let cov = covers(t);
                let gain = cov.iter().filter(|v| remaining.contains(v)).count();
                (gain, usize::MAX - term_size(store, t))
            })?;
        let cov = covers(best);
        let gain = cov.iter().filter(|v| remaining.contains(v)).count();
        if gain == 0 {
            return None;
        }
        remaining.retain(|v| !cov.contains(v));
        group.push(best);
    }
    Some(group)
}

/// Equivalence classes over ground terms (from equalities true in the
/// current boolean model). E-matching descends *modulo* these classes, the
/// key to proofs that rewrite through definitional equalities (e.g.
/// `index(view(l), i)` matching `index(concat(a, b), j)` once
/// `view(l) = concat(...)` is known).
#[derive(Default)]
pub struct ClassIndex {
    parent: HashMap<TermId, TermId>,
    members: HashMap<TermId, Vec<TermId>>,
    /// Consultation probe: set by [`ClassIndex::find`] (and hence
    /// [`ClassIndex::members_of`]) since the last [`ClassIndex::reset_probe`].
    /// The watermark e-matcher brackets each trigger-group computation with
    /// reset/read — a group whose matches were decided without ever touching
    /// the partition (every bucket term matched syntactically on the first
    /// try: the common `f(x, y)` trigger shape) is a pure function of the
    /// term store and its ground buckets, so its cached bindings stay valid
    /// across class merges.
    probed: std::cell::Cell<bool>,
}

impl ClassIndex {
    pub fn new() -> ClassIndex {
        ClassIndex::default()
    }

    pub fn find(&self, mut t: TermId) -> TermId {
        self.probed.set(true);
        while let Some(&p) = self.parent.get(&t) {
            if p == t {
                break;
            }
            t = p;
        }
        t
    }

    /// Clear the consultation probe (see the field doc).
    pub fn reset_probe(&self) {
        self.probed.set(false);
    }

    /// Whether [`ClassIndex::find`] ran since the last
    /// [`ClassIndex::reset_probe`].
    pub fn probed(&self) -> bool {
        self.probed.get()
    }

    pub fn union(&mut self, a: TermId, b: TermId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent.insert(ra, rb);
        self.parent.entry(rb).or_insert(rb);
        let ma = self.members.remove(&ra).unwrap_or_else(|| vec![ra]);
        let mb = self.members.entry(rb).or_insert_with(|| vec![rb]);
        for t in ma {
            if !mb.contains(&t) {
                mb.push(t);
            }
        }
    }

    /// Members of `t`'s class (always contains `t` itself).
    pub fn members_of(&self, t: TermId) -> Vec<TermId> {
        let r = self.find(t);
        match self.members.get(&r) {
            Some(m) => {
                let mut v = m.clone();
                if !v.contains(&t) {
                    v.push(t);
                }
                v
            }
            None => vec![t],
        }
    }
}

/// Cap on how many class members are tried per pattern position.
const CLASS_FANOUT: usize = 8;

/// Pattern match of `pat` (may contain bound vars) against ground term
/// `ground`, modulo `classes`, extending `binding`.
pub fn match_pattern(
    store: &TermStore,
    classes: &ClassIndex,
    pat: TermId,
    ground: TermId,
    binding: &mut Vec<(u32, TermId)>,
) -> bool {
    if let TermKind::Bound(bv) = store.kind(pat) {
        if store.sort_of(ground) != bv.sort {
            return false;
        }
        return match binding.iter().find(|&&(i, _)| i == bv.index) {
            Some(&(_, t)) => t == ground || classes.find(t) == classes.find(ground),
            None => {
                binding.push((bv.index, ground));
                true
            }
        };
    }
    // Try the ground term itself first, then other members of its class.
    let save = binding.len();
    if match_pattern_syntactic(store, classes, pat, ground, binding) {
        return true;
    }
    binding.truncate(save);
    for (i, m) in classes.members_of(ground).into_iter().enumerate() {
        if i > CLASS_FANOUT {
            break;
        }
        if m == ground {
            continue;
        }
        if match_pattern_syntactic(store, classes, pat, m, binding) {
            return true;
        }
        binding.truncate(save);
    }
    false
}

fn match_pattern_syntactic(
    store: &TermStore,
    classes: &ClassIndex,
    pat: TermId,
    ground: TermId,
    binding: &mut Vec<(u32, TermId)>,
) -> bool {
    match store.kind(pat) {
        TermKind::Bound(_) => match_pattern(store, classes, pat, ground, binding),
        TermKind::App(f, args) => match store.kind(ground) {
            TermKind::App(g, gargs) if f == g && args.len() == gargs.len() => {
                let (args, gargs) = (args.clone(), gargs.clone());
                args.iter()
                    .zip(gargs.iter())
                    .all(|(&p, &g)| match_pattern(store, classes, p, g, binding))
            }
            _ => false,
        },
        TermKind::DtSel(dt, c, f, a) => match store.kind(ground) {
            TermKind::DtSel(dt2, c2, f2, a2) if dt == dt2 && c == c2 && f == f2 => {
                let (a, a2) = (*a, *a2);
                match_pattern(store, classes, a, a2, binding)
            }
            _ => false,
        },
        TermKind::DtCtor(dt, c, args) => match store.kind(ground) {
            TermKind::DtCtor(dt2, c2, gargs) if dt == dt2 && c == c2 => {
                let (args, gargs) = (args.clone(), gargs.clone());
                args.iter()
                    .zip(gargs.iter())
                    .all(|(&p, &g)| match_pattern(store, classes, p, g, binding))
            }
            _ => false,
        },
        TermKind::DtTest(dt, c, a) => match store.kind(ground) {
            TermKind::DtTest(dt2, c2, a2) if dt == dt2 && c == c2 => {
                let (a, a2) = (*a, *a2);
                match_pattern(store, classes, a, a2, binding)
            }
            _ => false,
        },
        TermKind::IntDiv(a, b) => match store.kind(ground) {
            TermKind::IntDiv(c, d) => {
                let (a, b, c, d) = (*a, *b, *c, *d);
                match_pattern(store, classes, a, c, binding)
                    && match_pattern(store, classes, b, d, binding)
            }
            _ => false,
        },
        TermKind::IntMod(a, b) => match store.kind(ground) {
            TermKind::IntMod(c, d) => {
                let (a, b, c, d) = (*a, *b, *c, *d);
                match_pattern(store, classes, a, c, binding)
                    && match_pattern(store, classes, b, d, binding)
            }
            _ => false,
        },
        _ => pat == ground && !store.has_bound_var(pat),
    }
}

/// The head function symbol of a pattern, used to index ground terms.
/// `Ord` so index traversals can be made deterministic (rlimit verdicts
/// must not depend on hash iteration order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PatternHead {
    Func(crate::term::FuncId),
    DtSel(crate::term::DatatypeId, u32, u32),
    DtCtor(crate::term::DatatypeId, u32),
    DtTest(crate::term::DatatypeId, u32),
    IntDiv,
    IntMod,
}

pub fn pattern_head(store: &TermStore, t: TermId) -> Option<PatternHead> {
    match store.kind(t) {
        TermKind::App(f, _) => Some(PatternHead::Func(*f)),
        TermKind::DtSel(dt, c, f, _) => Some(PatternHead::DtSel(*dt, *c, *f)),
        TermKind::DtCtor(dt, c, _) => Some(PatternHead::DtCtor(*dt, *c)),
        TermKind::DtTest(dt, c, _) => Some(PatternHead::DtTest(*dt, *c)),
        TermKind::IntDiv(..) => Some(PatternHead::IntDiv),
        TermKind::IntMod(..) => Some(PatternHead::IntMod),
        _ => None,
    }
}

/// One pattern step of the per-group fold: extend every binding in
/// `partial` against every term in `grounds`, appending successes to
/// `next`, with exactly the per-element limit discipline of the original
/// batch enumerator (the count is checked after *every* ground term, match
/// or not). Returns `true` when the limit break fired.
///
/// `next` may arrive non-empty: the watermark e-matcher seeds it with the
/// raw bindings cached from the previous round and passes only the ground
/// terms beyond its high-water mark, which reproduces the batch fold's
/// state at that point byte for byte (the cached prefix is exactly what
/// the batch fold would have accumulated over `grounds[..wm]`).
pub fn match_step(
    store: &TermStore,
    classes: &ClassIndex,
    pat: TermId,
    partial: &[Vec<(u32, TermId)>],
    grounds: &[TermId],
    limit: usize,
    next: &mut Vec<Vec<(u32, TermId)>>,
) -> bool {
    for binding in partial {
        for &g in grounds {
            let mut b = binding.clone();
            if match_pattern(store, classes, pat, g, &mut b) {
                next.push(b);
            }
            if next.len() > limit {
                return true;
            }
        }
        if next.len() > limit {
            return true;
        }
    }
    false
}

/// Raw (pre-assembly) bindings for one trigger group: the inner fold of
/// the batch enumerator, factored out so the solver's watermark e-matcher
/// can recompute a single group. A pattern with no matchable head or an
/// empty ground bucket yields no bindings, exactly as in the batch path.
pub fn match_group(
    store: &TermStore,
    classes: &ClassIndex,
    group: &[TermId],
    ground_index: &HashMap<PatternHead, Vec<TermId>>,
    limit: usize,
) -> Vec<Vec<(u32, TermId)>> {
    let mut partial: Vec<Vec<(u32, TermId)>> = vec![vec![]];
    for &pat in group {
        let head = match pattern_head(store, pat) {
            Some(h) => h,
            None => return Vec::new(),
        };
        let grounds = match ground_index.get(&head) {
            Some(g) => g,
            None => return Vec::new(),
        };
        let mut next = Vec::new();
        match_step(store, classes, pat, &partial, grounds, limit, &mut next);
        partial = next;
        if partial.is_empty() {
            return partial;
        }
    }
    partial
}

/// Assembly tail for one group's raw bindings: completeness filter,
/// canonicalization (sort by var index, drop extras), dedup against `out`,
/// and the global limit check after every element. Returns `true` when the
/// global limit fired and enumeration must stop mid-group.
pub fn assemble_group(
    quant: &Quant,
    raw: Vec<Vec<(u32, TermId)>>,
    out: &mut Vec<Vec<(u32, TermId)>>,
    limit: usize,
) -> bool {
    for mut b in raw {
        // Only keep complete bindings.
        if quant
            .vars
            .iter()
            .all(|&(i, _)| b.iter().any(|&(j, _)| j == i))
        {
            b.sort_by_key(|&(i, _)| i);
            b.retain(|&(i, _)| quant.vars.iter().any(|&(qi, _)| qi == i));
            if !out.contains(&b) {
                out.push(b);
            }
        }
        if out.len() > limit {
            return true;
        }
    }
    false
}

/// Enumerate all complete bindings of `quant` against the ground term index.
/// `ground_index` maps pattern heads to ground terms with that head.
pub fn enumerate_matches(
    store: &TermStore,
    classes: &ClassIndex,
    quant: &Quant,
    ground_index: &HashMap<PatternHead, Vec<TermId>>,
    limit: usize,
) -> Vec<Vec<(u32, TermId)>> {
    let mut out: Vec<Vec<(u32, TermId)>> = Vec::new();
    for group in &quant.triggers {
        let raw = match_group(store, classes, group, ground_index, limit);
        if assemble_group(quant, raw, &mut out, limit) {
            return out;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_minimal_single_trigger() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int], int);
        let g = s.declare_fun("g", vec![int], int);
        let x = s.mk_bound(0, int);
        let fx = s.mk_app(f, vec![x]);
        let gx = s.mk_app(g, vec![x]);
        let body = s.mk_eq(fx, gx);
        let trig = infer_triggers(&s, &[(0, int)], body, TriggerPolicy::Minimal);
        assert_eq!(trig.len(), 1);
        assert_eq!(trig[0].len(), 1);
    }

    #[test]
    fn infer_broad_many_triggers() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int], int);
        let g = s.declare_fun("g", vec![int], int);
        let x = s.mk_bound(0, int);
        let fx = s.mk_app(f, vec![x]);
        let gx = s.mk_app(g, vec![x]);
        let body = s.mk_eq(fx, gx);
        let trig = infer_triggers(&s, &[(0, int)], body, TriggerPolicy::Broad);
        assert!(
            trig.len() >= 2,
            "broad policy keeps all candidates: {trig:?}"
        );
    }

    #[test]
    fn infer_multipattern_when_needed() {
        // forall x, y. f(x) <= g(y): no single app covers both vars.
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int], int);
        let g = s.declare_fun("g", vec![int], int);
        let x = s.mk_bound(0, int);
        let y = s.mk_bound(1, int);
        let fx = s.mk_app(f, vec![x]);
        let gy = s.mk_app(g, vec![y]);
        let body = s.mk_le(fx, gy);
        let trig = infer_triggers(&s, &[(0, int), (1, int)], body, TriggerPolicy::Minimal);
        assert_eq!(trig.len(), 1);
        assert_eq!(trig[0].len(), 2);
    }

    #[test]
    fn infer_fallback_whole_body_when_no_candidate() {
        // forall x. x + 1 > 0: the only occurrence of x is under an
        // interpreted op, so there is no app candidate. The fallback must
        // return the whole body as the trigger and set the flag.
        let mut s = TermStore::new();
        let int = s.int_sort();
        let x = s.mk_bound(0, int);
        let one = s.mk_int(1);
        let zero = s.mk_int(0);
        let x1 = s.mk_add(vec![x, one]);
        let body = s.mk_gt(x1, zero);
        for policy in [TriggerPolicy::Minimal, TriggerPolicy::Broad] {
            let inf = infer_triggers_detailed(&s, &[(0, int)], body, policy);
            assert!(inf.whole_body_fallback, "{policy:?}");
            assert_eq!(inf.groups, vec![vec![body]], "{policy:?}");
            // The legacy entry point agrees with the detailed one.
            assert_eq!(infer_triggers(&s, &[(0, int)], body, policy), inf.groups);
        }
        // The fallback trigger has no matchable head, so e-matching still
        // produces no instantiations — but the outcome is defined.
        assert_eq!(pattern_head(&s, body), None);
    }

    #[test]
    fn infer_no_fallback_when_candidates_cover() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int], int);
        let x = s.mk_bound(0, int);
        let fx = s.mk_app(f, vec![x]);
        let zero = s.mk_int(0);
        let body = s.mk_ge(fx, zero);
        let inf = infer_triggers_detailed(&s, &[(0, int)], body, TriggerPolicy::Minimal);
        assert!(!inf.whole_body_fallback);
        assert_eq!(inf.groups, vec![vec![fx]]);
    }

    #[test]
    fn match_simple_app() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int], int);
        let x = s.mk_bound(0, int);
        let pat = s.mk_app(f, vec![x]);
        let three = s.mk_int(3);
        let f3 = s.mk_app(f, vec![three]);
        let classes = ClassIndex::new();
        let mut binding = Vec::new();
        assert!(match_pattern(&s, &classes, pat, f3, &mut binding));
        assert_eq!(binding, vec![(0, three)]);
    }

    #[test]
    fn match_consistency_required() {
        // f(x, x) should not match f(1, 2).
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int, int], int);
        let x = s.mk_bound(0, int);
        let pat = s.mk_app(f, vec![x, x]);
        let one = s.mk_int(1);
        let two = s.mk_int(2);
        let f12 = s.mk_app(f, vec![one, two]);
        let f11 = s.mk_app(f, vec![one, one]);
        let classes = ClassIndex::new();
        let mut b = Vec::new();
        assert!(!match_pattern(&s, &classes, pat, f12, &mut b));
        let mut b = Vec::new();
        assert!(match_pattern(&s, &classes, pat, f11, &mut b));
    }

    #[test]
    fn enumerate_with_index() {
        let mut s = TermStore::new();
        let int = s.int_sort();
        let f = s.declare_fun("f", vec![int], int);
        let x = s.mk_bound(0, int);
        let fx = s.mk_app(f, vec![x]);
        let zero = s.mk_int(0);
        let body = s.mk_le(fx, zero);
        let q = Quant {
            is_forall: true,
            vars: vec![(0, int)],
            triggers: vec![vec![fx]],
            body,
            qid: s.sym("q"),
        };
        let one = s.mk_int(1);
        let two = s.mk_int(2);
        let f1 = s.mk_app(f, vec![one]);
        let f2 = s.mk_app(f, vec![two]);
        let mut index = HashMap::new();
        index.insert(PatternHead::Func(f), vec![f1, f2]);
        let ms = enumerate_matches(&s, &ClassIndex::new(), &q, &index, 100);
        assert_eq!(ms.len(), 2);
    }
}
