//! CDCL SAT core with two-watched-literal propagation, first-UIP clause
//! learning, VSIDS-style activities, phase saving, and Luby restarts.
//!
//! The solver is incremental in the limited way the SMT layer needs: new
//! variables and clauses may be added between `solve` calls (the solver
//! backtracks to level 0 first), and the caller supplies a *final-check*
//! callback invoked on every full assignment; the callback either accepts
//! the model or returns a conflict clause to learn.
//!
//! When a [`ResourceMeter`] is attached, the search charges conflicts,
//! decisions, and propagations to it, and aborts with `Unknown` once the
//! meter's budget trips — checked only at conflicts, so the abort point is
//! a deterministic function of the input.

use std::sync::Arc;

use veris_obs::{Counter, ResourceMeter};

/// A boolean variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BVar(pub u32);

/// A literal: variable plus sign. Encoded as `var * 2 + (negated as usize)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit(pub u32);

impl Lit {
    pub fn new(var: BVar, negated: bool) -> Lit {
        Lit(var.0 * 2 + negated as u32)
    }

    pub fn pos(var: BVar) -> Lit {
        Lit::new(var, false)
    }

    pub fn neg(var: BVar) -> Lit {
        Lit::new(var, true)
    }

    pub fn var(self) -> BVar {
        BVar(self.0 / 2)
    }

    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f32,
    deleted: bool,
    /// Assertion depth this clause lives at. For input clauses: the number
    /// of open [`SatSolver::push`] frames when it was added. For learnt
    /// clauses: the derivation level — the maximum depth of any clause (or
    /// root-assignment tag) its resolution proof rests on. A learnt clause
    /// whose derivation level is at or below the depth remaining after a
    /// `pop` is still entailed there and may be retained.
    level: u32,
}

/// Snapshot of the complete mutable solver state, taken by
/// [`SatSolver::push`] and restored wholesale by [`SatSolver::pop`].
///
/// A full snapshot (rather than watermark-based trimming) guarantees that a
/// popped solver is *bit-identical* to its state at push time — including
/// VSIDS activities, saved phases, the in-place literal permutations the
/// two-watched-literal scheme applies to clause bodies, and the search
/// counters — so a check run inside a frame is byte-for-byte identical to
/// the same check run on a fresh solver with the same prefix of operations.
struct SatFrame {
    num_vars: u32,
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<BVar>,
    heap_index: Vec<i32>,
    clause_inc: f32,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    root_conflict: bool,
    conflict_core: Vec<Lit>,
    root_tag: Vec<u32>,
}

/// Outcome of a solve call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    Sat,
    Unsat,
    /// Resource limit reached.
    Unknown,
}

/// Reason a final-check callback can give for rejecting a full assignment.
pub enum FinalCheck {
    /// The assignment is consistent with the theories; accept it.
    Consistent,
    /// Learn this clause (must be false under the current assignment) and
    /// continue searching.
    Conflict(Vec<Lit>),
    /// New clauses were added out-of-band (e.g., quantifier instances);
    /// restart the search loop.
    Restart,
}

/// Resource limits for the SAT search.
#[derive(Clone, Copy, Debug)]
pub struct SatLimits {
    pub max_conflicts: u64,
    /// Wall-clock deadline; checked periodically during search.
    pub deadline: Option<std::time::Instant>,
}

impl Default for SatLimits {
    fn default() -> Self {
        SatLimits {
            max_conflicts: 2_000_000,
            deadline: None,
        }
    }
}

/// CDCL SAT solver.
pub struct SatSolver {
    num_vars: u32,
    clauses: Vec<Clause>,
    /// For each literal, the clauses watching it.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<LBool>,
    /// Saved phases for decision polarity.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Binary heap order is approximated with a simple scan + cache; for our
    /// problem sizes an indexed heap is not the bottleneck, but we keep one
    /// anyway for robustness.
    heap: Vec<BVar>,
    heap_index: Vec<i32>,
    clause_inc: f32,
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    root_conflict: bool,
    /// After an `Unsat` answer from [`SatSolver::solve_with_assumptions`]:
    /// the subset of assumption literals implicated in the refutation (empty
    /// when the problem is unsat without any assumptions).
    conflict_core: Vec<Lit>,
    /// Optional resource meter; charged during search when present.
    meter: Option<Arc<ResourceMeter>>,
    /// Open assertion frames (see [`SatSolver::push`]).
    frames: Vec<SatFrame>,
    /// Per-variable derivation tag for root-level (level-0) assignments:
    /// the assertion depth the root fact was derived at. Consulted when a
    /// learnt clause's resolution proof eliminates a root-assigned literal,
    /// so the clause's derivation level accounts for root facts that came
    /// from clauses above the retained depth.
    root_tag: Vec<u32>,
    /// When set, [`SatSolver::pop`] re-adds learnt clauses whose derivation
    /// level lies at or below the remaining depth instead of discarding
    /// them. Off by default: retention changes the subsequent search
    /// trajectory relative to a fresh solver, which the VC layer's
    /// byte-identical-replay guarantee forbids (see DESIGN.md).
    retain_learned: bool,
}

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    pub fn new() -> SatSolver {
        SatSolver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            clause_inc: 1.0,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            root_conflict: false,
            conflict_core: Vec::new(),
            meter: None,
            frames: Vec::new(),
            root_tag: Vec::new(),
            retain_learned: false,
        }
    }

    /// Attach a resource meter; search work is charged to it from now on.
    pub fn set_meter(&mut self, meter: Arc<ResourceMeter>) {
        self.meter = Some(meter);
    }

    /// Enable or disable learnt-clause retention across [`SatSolver::pop`].
    pub fn set_retain_learned(&mut self, on: bool) {
        self.retain_learned = on;
    }

    /// Number of open assertion frames.
    pub fn depth(&self) -> u32 {
        self.frames.len() as u32
    }

    /// Open an assertion frame: snapshot the complete solver state. A later
    /// [`SatSolver::pop`] restores it exactly, so anything added or learnt
    /// in between leaves no trace (unless retention is enabled, which
    /// re-adds learnt clauses provably derived below the popped frame).
    pub fn push(&mut self) {
        self.frames.push(SatFrame {
            num_vars: self.num_vars,
            clauses: self.clauses.clone(),
            watches: self.watches.clone(),
            assign: self.assign.clone(),
            phase: self.phase.clone(),
            level: self.level.clone(),
            reason: self.reason.clone(),
            trail: self.trail.clone(),
            trail_lim: self.trail_lim.clone(),
            qhead: self.qhead,
            activity: self.activity.clone(),
            var_inc: self.var_inc,
            heap: self.heap.clone(),
            heap_index: self.heap_index.clone(),
            clause_inc: self.clause_inc,
            conflicts: self.conflicts,
            decisions: self.decisions,
            propagations: self.propagations,
            root_conflict: self.root_conflict,
            conflict_core: self.conflict_core.clone(),
            root_tag: self.root_tag.clone(),
        });
    }

    /// Close the innermost assertion frame, restoring the exact state at
    /// the matching [`SatSolver::push`]. With retention enabled, learnt
    /// clauses (and root-derived unit facts) whose derivation level is at
    /// or below the remaining depth are re-added afterwards — they are
    /// consequences of the surviving clause set alone.
    ///
    /// # Panics
    /// Panics if no frame is open.
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        let depth = self.frames.len() as u32;
        let mut kept_clauses: Vec<(Vec<Lit>, u32)> = Vec::new();
        let mut kept_units: Vec<(Lit, u32)> = Vec::new();
        if self.retain_learned {
            for c in &self.clauses[frame.clauses.len()..] {
                if c.learnt && !c.deleted && c.level <= depth {
                    let mut lits = c.lits.clone();
                    lits.sort_unstable();
                    kept_clauses.push((lits, c.level));
                }
            }
            // Root-assigned facts (learnt units and their propagation
            // closure) derived below the popped frame.
            for &l in &self.trail {
                let v = l.var().0 as usize;
                if self.level[v] == 0
                    && l.var().0 < frame.num_vars
                    && frame.assign[v] == LBool::Undef
                    && self.root_tag[v] <= depth
                {
                    kept_units.push((l, self.root_tag[v]));
                }
            }
        }
        self.num_vars = frame.num_vars;
        self.clauses = frame.clauses;
        self.watches = frame.watches;
        self.assign = frame.assign;
        self.phase = frame.phase;
        self.level = frame.level;
        self.reason = frame.reason;
        self.trail = frame.trail;
        self.trail_lim = frame.trail_lim;
        self.qhead = frame.qhead;
        self.activity = frame.activity;
        self.var_inc = frame.var_inc;
        self.heap = frame.heap;
        self.heap_index = frame.heap_index;
        self.clause_inc = frame.clause_inc;
        self.conflicts = frame.conflicts;
        self.decisions = frame.decisions;
        self.propagations = frame.propagations;
        self.root_conflict = frame.root_conflict;
        self.conflict_core = frame.conflict_core;
        self.root_tag = frame.root_tag;
        for (l, tag) in kept_units {
            self.readd_retained(vec![l], tag);
        }
        for (lits, level) in kept_clauses {
            self.readd_retained(lits, level);
        }
    }

    /// Re-add a retained learnt clause after a pop. The literals are
    /// already normalized (sorted, deduped, tautology-free); only the
    /// root-assignment filtering has to be redone against the restored
    /// state.
    fn readd_retained(&mut self, mut lits: Vec<Lit>, level: u32) {
        if self.root_conflict {
            return;
        }
        self.backtrack_to(0);
        if lits.iter().any(|&l| self.value(l) == LBool::True) {
            return;
        }
        lits.retain(|&l| self.value(l) != LBool::False);
        match lits.len() {
            0 => self.root_conflict = true,
            1 => {
                self.enqueue(lits[0], None);
                self.root_tag[lits[0].var().0 as usize] = level;
                if self.propagate().is_some() {
                    self.root_conflict = true;
                }
            }
            _ => {
                let cref = self.attach_clause(lits, true);
                self.clauses[cref.0 as usize].level = level;
            }
        }
    }

    pub fn new_var(&mut self) -> BVar {
        let v = BVar(self.num_vars);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.heap_index.push(-1);
        self.root_tag.push(self.frames.len() as u32);
        self.heap_insert(v);
        v
    }

    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    pub fn value(&self, l: Lit) -> LBool {
        match self.assign[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(!l.is_neg()),
            LBool::False => LBool::from_bool(l.is_neg()),
        }
    }

    pub fn value_var(&self, v: BVar) -> LBool {
        self.assign[v.0 as usize]
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. May be called between (or during, via final check)
    /// solves; the solver backtracks as needed. Returns false if the clause
    /// makes the problem trivially unsat at the root level.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        if self.root_conflict {
            return false;
        }
        // Normalize at root only when safe: dedupe, drop root-false lits,
        // detect tautology and root-true lits.
        lits.sort_unstable();
        lits.dedup();
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // tautology: contains l and !l
            }
            i += 1;
        }
        let root_value = |s: &Self, l: Lit| -> LBool {
            if s.level[l.var().0 as usize] == 0 {
                s.value(l)
            } else {
                LBool::Undef
            }
        };
        if lits.iter().any(|&l| root_value(self, l) == LBool::True) {
            return true;
        }
        lits.retain(|&l| root_value(self, l) != LBool::False);
        match lits.len() {
            0 => {
                self.root_conflict = true;
                false
            }
            1 => {
                self.backtrack_to(0);
                if self.value(lits[0]) == LBool::False {
                    self.root_conflict = true;
                    return false;
                }
                if self.value(lits[0]) == LBool::Undef {
                    self.enqueue(lits[0], None);
                    self.root_tag[lits[0].var().0 as usize] = self.frames.len() as u32;
                    if self.propagate().is_some() {
                        self.root_conflict = true;
                        return false;
                    }
                }
                true
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[lits[0].negate().index()].push(cref);
        self.watches[lits[1].negate().index()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
            level: self.frames.len() as u32,
        });
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var().0 as usize;
        self.assign[v] = LBool::from_bool(!l.is_neg());
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        if self.decision_level() == 0 {
            // Root assignment: tag it with the depth it was derived at, so
            // retention can tell surviving root facts from popped ones.
            if let Some(cref) = reason {
                let c = &self.clauses[cref.0 as usize];
                let mut tag = c.level;
                for &q in &c.lits {
                    if q.var() != l.var() {
                        tag = tag.max(self.root_tag[q.var().0 as usize]);
                    }
                }
                self.root_tag[v] = tag;
            }
            // `reason == None` at level 0 is a unit clause or a learnt
            // unit; those callers set the tag themselves.
        }
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            if let Some(m) = &self.meter {
                m.charge(Counter::SatPropagations, 1);
            }
            // Clauses watching !l need a new watch or are unit/conflicting.
            let mut watchers = std::mem::take(&mut self.watches[l.index()]);
            let mut j = 0;
            let mut conflict = None;
            for i in 0..watchers.len() {
                let cref = watchers[i];
                if self.clauses[cref.0 as usize].deleted {
                    continue;
                }
                let watched_false = l.negate();
                // Ensure lits[1] is the false watch.
                {
                    let clause = &mut self.clauses[cref.0 as usize];
                    if clause.lits[0] == watched_false {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref.0 as usize].lits[0];
                if self.value(first) == LBool::True {
                    watchers[j] = cref;
                    j += 1;
                    continue;
                }
                // Find a new watch.
                let mut found = false;
                {
                    let len = self.clauses[cref.0 as usize].lits.len();
                    for k in 2..len {
                        let cand = self.clauses[cref.0 as usize].lits[k];
                        if self.value(cand) != LBool::False {
                            self.clauses[cref.0 as usize].lits.swap(1, k);
                            self.watches[cand.negate().index()].push(cref);
                            found = true;
                            break;
                        }
                    }
                }
                if found {
                    continue;
                }
                // Unit or conflict.
                watchers[j] = cref;
                j += 1;
                if self.value(first) == LBool::False {
                    // Conflict; keep remaining watchers.
                    for k in i + 1..watchers.len() {
                        watchers[j] = watchers[k];
                        j += 1;
                    }
                    conflict = Some(cref);
                    break;
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            watchers.truncate(j);
            self.watches[l.index()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause, the backjump
    /// level, and the clause's *derivation level*: the maximum assertion
    /// depth of any clause its resolution proof used (root-assigned
    /// literals contribute their [`SatSolver::root_tag`]).
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        let mut deriv = 0u32;
        loop {
            {
                self.bump_clause(cref);
                deriv = deriv.max(self.clauses[cref.0 as usize].level);
                let clause = &self.clauses[cref.0 as usize];
                let start = if p.is_some() { 1 } else { 0 };
                let lits: Vec<Lit> = clause.lits[start..].to_vec();
                for q in lits {
                    let v = q.var().0 as usize;
                    if !seen[v] && self.level[v] > 0 {
                        seen[v] = true;
                        self.bump_var(q.var());
                        if self.level[v] >= self.decision_level() {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    } else if self.level[v] == 0 {
                        // Root literal resolved away: its derivation depth
                        // is part of this clause's provenance.
                        deriv = deriv.max(self.root_tag[v]);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize;
            counter -= 1;
            seen[pv] = false;
            if counter == 0 {
                learnt[0] = p.unwrap().negate();
                break;
            }
            cref = self.reason[pv].expect("non-decision must have a reason");
        }
        // Conflict-clause minimization (simple recursive check).
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.redundant(l, &seen_set(&learnt)))
            .collect();
        // A minimized-away literal's reason clause joins the proof: fold
        // its depth (and its root literals' tags) into the derivation.
        for (&l, &k) in learnt.iter().zip(&keep) {
            if k {
                continue;
            }
            if let Some(cref) = self.reason[l.var().0 as usize] {
                deriv = deriv.max(self.clauses[cref.0 as usize].level);
                for &q in &self.clauses[cref.0 as usize].lits[1..] {
                    let v = q.var().0 as usize;
                    if self.level[v] == 0 {
                        deriv = deriv.max(self.root_tag[v]);
                    }
                }
            }
        }
        let learnt: Vec<Lit> = learnt
            .into_iter()
            .zip(keep)
            .filter_map(|(l, k)| if k { Some(l) } else { None })
            .collect();
        // Backjump level: second-highest level in the clause.
        let bt = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        (learnt, bt, deriv)
    }

    /// Is `l` implied by the other literals in the learnt clause (one step)?
    fn redundant(&self, l: Lit, in_clause: &std::collections::HashSet<BVar>) -> bool {
        match self.reason[l.var().0 as usize] {
            None => false,
            Some(cref) => self.clauses[cref.0 as usize].lits[1..]
                .iter()
                .all(|&q| in_clause.contains(&q.var()) || self.level[q.var().0 as usize] == 0),
        }
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assign[v.0 as usize] = LBool::Undef;
            self.reason[v.0 as usize] = None;
            self.heap_insert(v);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v.0 as usize] == LBool::Undef {
                return Some(Lit::new(v, !self.phase[v.0 as usize]));
            }
        }
        None
    }

    // --- activity heap -------------------------------------------------

    fn bump_var(&mut self, v: BVar) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(v);
    }

    fn decay_var(&mut self) {
        self.var_inc /= 0.95;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        if c.learnt {
            c.activity += self.clause_inc;
            if c.activity > 1e20 {
                for cl in &mut self.clauses {
                    cl.activity *= 1e-20;
                }
                self.clause_inc *= 1e-20;
            }
        }
    }

    fn heap_insert(&mut self, v: BVar) {
        if self.heap_index[v.0 as usize] >= 0 {
            return;
        }
        self.heap_index[v.0 as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<BVar> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.0 as usize] = -1;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.0 as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn heap_update(&mut self, v: BVar) {
        let idx = self.heap_index[v.0 as usize];
        if idx >= 0 {
            self.heap_up(idx as usize);
        }
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i].0 as usize] > self.activity[self.heap[parent].0 as usize]
            {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l].0 as usize]
                    > self.activity[self.heap[best].0 as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r].0 as usize]
                    > self.activity[self.heap[best].0 as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].0 as usize] = a as i32;
        self.heap_index[self.heap[b].0 as usize] = b as i32;
    }

    // --- main search ----------------------------------------------------

    /// Solve with a final-check callback (theory integration hook).
    pub fn solve_with<F>(&mut self, limits: SatLimits, final_check: F) -> SatResult
    where
        F: FnMut(&SatSolver) -> FinalCheck,
    {
        self.solve_with_assumptions(limits, &[], final_check)
    }

    /// After `solve_with_assumptions` returns `Unsat`, the subset of
    /// assumption literals implicated in the final conflict. Empty when the
    /// clause set is unsatisfiable on its own.
    pub fn core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Solve under a set of assumption literals (MiniSat-style incremental
    /// interface). Each assumption is enqueued as a decision at its own
    /// level before ordinary branching; an `Unsat` answer additionally
    /// yields, via [`SatSolver::core`], the subset of assumptions the
    /// refutation depends on (final-conflict analysis over the implication
    /// graph).
    pub fn solve_with_assumptions<F>(
        &mut self,
        limits: SatLimits,
        assumptions: &[Lit],
        mut final_check: F,
    ) -> SatResult
    where
        F: FnMut(&SatSolver) -> FinalCheck,
    {
        self.conflict_core.clear();
        if self.root_conflict {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.root_conflict = true;
            return SatResult::Unsat;
        }
        let mut conflicts_at_start = self.conflicts;
        let mut restart_unit = 64u64;
        let mut luby_idx = 1u64;
        let mut next_restart = self.conflicts + restart_unit * luby(luby_idx);
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    self.root_conflict = true;
                    return SatResult::Unsat;
                }
                if self.conflicts - conflicts_at_start > limits.max_conflicts {
                    return SatResult::Unknown;
                }
                if let Some(m) = &self.meter {
                    m.charge(Counter::SatConflicts, 1);
                    if m.check("sat") {
                        return SatResult::Unknown;
                    }
                }
                if self.conflicts.is_multiple_of(256) {
                    if let Some(d) = limits.deadline {
                        if std::time::Instant::now() > d {
                            return SatResult::Unknown;
                        }
                    }
                }
                let (learnt, bt, deriv) = self.analyze(conflict);
                self.backtrack_to(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                    if self.decision_level() == 0 {
                        self.root_tag[learnt[0].var().0 as usize] = deriv;
                    }
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    self.clauses[cref.0 as usize].level = deriv;
                    self.enqueue(learnt[0], Some(cref));
                }
                self.decay_var();
            } else {
                if self.conflicts >= next_restart {
                    luby_idx += 1;
                    restart_unit = 64;
                    next_restart = self.conflicts + restart_unit * luby(luby_idx);
                    self.backtrack_to(0);
                    continue;
                }
                if (self.decision_level() as usize) < assumptions.len() {
                    // Assumptions occupy the lowest decision levels, one
                    // per level, re-established after every restart.
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        LBool::True => {
                            // Already implied: open an empty level so level
                            // indices stay aligned with assumption indices.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // The clause set refutes this assumption given
                            // the ones already decided.
                            self.conflict_core = self.analyze_final(a);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            self.decisions += 1;
                            if let Some(m) = &self.meter {
                                m.charge(Counter::SatDecisions, 1);
                            }
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        // Full assignment: ask the theories.
                        match final_check(self) {
                            FinalCheck::Consistent => return SatResult::Sat,
                            FinalCheck::Conflict(clause) => {
                                // The clause must be false under the current
                                // assignment. Learn it and backtrack.
                                debug_assert!(
                                    clause.iter().all(|&l| self.value(l) == LBool::False),
                                    "theory conflict clause must be falsified"
                                );
                                self.conflicts += 1;
                                if self.conflicts - conflicts_at_start > limits.max_conflicts {
                                    return SatResult::Unknown;
                                }
                                if let Some(m) = &self.meter {
                                    m.charge(Counter::SatConflicts, 1);
                                    if m.check("sat") {
                                        return SatResult::Unknown;
                                    }
                                }
                                if clause.is_empty() {
                                    self.root_conflict = true;
                                    return SatResult::Unsat;
                                }
                                // Restart to the root so the learned theory
                                // clause is attached with sound watches; the
                                // clause excludes the current model, so the
                                // search makes progress.
                                self.backtrack_to(0);
                                if !self.add_clause(clause) {
                                    return SatResult::Unsat;
                                }
                                conflicts_at_start = conflicts_at_start.min(self.conflicts);
                            }
                            FinalCheck::Restart => {
                                self.backtrack_to(0);
                                if self.root_conflict {
                                    return SatResult::Unsat;
                                }
                            }
                        }
                    }
                    Some(l) => {
                        self.decisions += 1;
                        if let Some(m) = &self.meter {
                            m.charge(Counter::SatDecisions, 1);
                        }
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }

    /// Plain SAT solve without theories.
    pub fn solve(&mut self, limits: SatLimits) -> SatResult {
        self.solve_with(limits, |_| FinalCheck::Consistent)
    }

    /// Final-conflict analysis: the assumption `p` is falsified under the
    /// currently-decided assumptions. Walk the implication graph backwards
    /// from `¬p` and collect the assumption decisions it rests on.
    fn analyze_final(&self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            // `¬p` is implied at the root: `p` alone is refuted.
            return core;
        }
        let mut seen = vec![false; self.num_vars as usize];
        seen[p.var().0 as usize] = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            if !seen[v] {
                continue;
            }
            match self.reason[v] {
                // Every decision below the assumption levels is itself an
                // assumption (empty levels carry no trail literals).
                None => core.push(l),
                Some(cref) => {
                    for &q in &self.clauses[cref.0 as usize].lits[1..] {
                        if self.level[q.var().0 as usize] > 0 {
                            seen[q.var().0 as usize] = true;
                        }
                    }
                }
            }
        }
        core
    }
}

fn seen_set(lits: &[Lit]) -> std::collections::HashSet<BVar> {
    lits.iter().map(|l| l.var()).collect()
}

/// Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u64) -> u64 {
    let mut x = i as i64 - 1;
    let (mut size, mut seq) = (1i64, 0i64);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq.clamp(0, 62)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        let var = BVar(v.unsigned_abs() - 1);
        Lit::new(var, v < 0)
    }

    fn solver_with_vars(n: u32) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(1), lit(2)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with_vars(1);
        assert!(s.add_clause(vec![lit(1)]));
        assert!(!s.add_clause(vec![lit(-1)]) || s.solve(SatLimits::default()) == SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes. Var p(i,h) = i*2 + h + 1.
        let mut s = solver_with_vars(6);
        let p = |i: u32, h: u32| lit((i * 2 + h + 1) as i32);
        for i in 0..3 {
            assert!(s.add_clause(vec![p(i, 0), p(i, 1)]));
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    assert!(s.add_clause(vec![p(i, h).negate(), p(j, h).negate()]));
                }
            }
        }
        assert_eq!(s.solve(SatLimits::default()), SatResult::Unsat);
    }

    #[test]
    fn chain_implications_sat() {
        let n = 50;
        let mut s = solver_with_vars(n);
        for i in 1..n as i32 {
            assert!(s.add_clause(vec![lit(-i), lit(i + 1)]));
        }
        assert!(s.add_clause(vec![lit(1)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        for i in 0..n {
            assert_eq!(s.value_var(BVar(i)), LBool::True);
        }
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(1), lit(2)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert!(s.add_clause(vec![lit(-1)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert_eq!(s.value_var(BVar(1)), LBool::True);
        s.add_clause(vec![lit(-2)]);
        assert_eq!(s.solve(SatLimits::default()), SatResult::Unsat);
    }

    #[test]
    fn final_check_conflict_loop() {
        // Theory: x1 and x2 cannot both be true; expressed only via the
        // final-check callback.
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(1)]));
        assert!(s.add_clause(vec![lit(2), lit(-1)]));
        let r = s.solve_with(SatLimits::default(), |sat| {
            if sat.value(lit(1)) == LBool::True && sat.value(lit(2)) == LBool::True {
                FinalCheck::Conflict(vec![lit(-1), lit(-2)])
            } else {
                FinalCheck::Consistent
            }
        });
        assert_eq!(r, SatResult::Unsat);
    }

    #[test]
    fn assumptions_sat_then_unsat_with_core() {
        // (x1 -> x2), (x3 -> !x2): sat under {x1}, sat under {x3},
        // unsat under {x1, x3} with both assumptions in the core.
        let mut s = solver_with_vars(3);
        assert!(s.add_clause(vec![lit(-1), lit(2)]));
        assert!(s.add_clause(vec![lit(-3), lit(-2)]));
        let asm = [lit(1)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Sat
        );
        let asm = [lit(3)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Sat
        );
        let asm = [lit(1), lit(3)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        let mut core = s.core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![lit(1), lit(3)]);
        // Not a root conflict: solving without assumptions is still sat.
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
    }

    #[test]
    fn assumption_core_excludes_irrelevant() {
        // x1 and !x1 both forced by assumptions {x1, x4, !x1}; x4 is
        // irrelevant and must not appear in the core.
        let mut s = solver_with_vars(4);
        assert!(s.add_clause(vec![lit(-1), lit(2)]));
        assert!(s.add_clause(vec![lit(-2), lit(3)]));
        let asm = [lit(4), lit(1), lit(-3)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        let mut core = s.core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![lit(1), lit(-3)]);
    }

    #[test]
    fn root_unsat_yields_empty_core() {
        let mut s = solver_with_vars(2);
        s.add_clause(vec![lit(1)]);
        s.add_clause(vec![lit(-1)]);
        let asm = [lit(2)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        assert!(s.core().is_empty());
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(1), lit(2)]));
        let asm = [lit(1), lit(-1)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        let mut core = s.core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![lit(1), lit(-1)]);
    }

    #[test]
    fn pop_removes_clauses_added_above() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(1), lit(2)]));
        s.push();
        s.add_clause(vec![lit(-1)]);
        s.add_clause(vec![lit(-2)]);
        assert_eq!(s.solve(SatLimits::default()), SatResult::Unsat);
        s.pop();
        // The frame's units (and the root conflict) are gone.
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn pop_restores_vars_and_counters() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(1), lit(2)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        let (c0, d0, p0) = (s.conflicts, s.decisions, s.propagations);
        s.push();
        let v = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(v), lit(-1)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        s.pop();
        assert_eq!(s.num_vars(), 2);
        assert_eq!((s.conflicts, s.decisions, s.propagations), (c0, d0, p0));
        // Solver still fully usable after the pop.
        assert!(s.add_clause(vec![lit(-1)]));
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert_eq!(s.value_var(BVar(1)), LBool::True);
    }

    #[test]
    fn nested_push_pop() {
        let mut s = solver_with_vars(3);
        assert!(s.add_clause(vec![lit(1), lit(2), lit(3)]));
        s.push();
        s.add_clause(vec![lit(-1)]);
        s.push();
        s.add_clause(vec![lit(-2)]);
        s.add_clause(vec![lit(-3)]);
        assert_eq!(s.solve(SatLimits::default()), SatResult::Unsat);
        s.pop();
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        s.pop();
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert_eq!(s.depth(), 0);
    }

    /// PHP(3,2) with a relaxation literal `r` in every clause: unsat under
    /// the assumption `¬r`, and the search must pass through genuine
    /// conflicts (so clauses get learnt) before concluding.
    fn relaxed_pigeonhole() -> SatSolver {
        let mut s = solver_with_vars(7);
        let p = |i: u32, h: u32| lit((i * 2 + h + 1) as i32);
        let r = lit(7);
        for i in 0..3 {
            assert!(s.add_clause(vec![p(i, 0), p(i, 1), r]));
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    assert!(s.add_clause(vec![p(i, h).negate(), p(j, h).negate(), r]));
                }
            }
        }
        s
    }

    #[test]
    fn pop_retains_learnts_derived_below() {
        // All clauses live at depth 0; the search (and therefore all
        // learning) happens inside a frame, so every learnt clause has
        // derivation level 0 and survives the pop when retention is on.
        let mut s = relaxed_pigeonhole();
        s.set_retain_learned(true);
        s.push();
        let asm = [lit(-7)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        let learnt_in_frame = s.clauses.iter().filter(|c| c.learnt && !c.deleted).count();
        assert!(learnt_in_frame > 0, "the PHP search must learn clauses");
        s.pop();
        // No units existed before the push, so every root fact and learnt
        // clause present now was retained across the pop.
        let learnt_after = s.clauses.iter().filter(|c| c.learnt && !c.deleted).count();
        let root_facts_after = s
            .trail
            .iter()
            .filter(|l| s.level[l.var().0 as usize] == 0)
            .count();
        assert!(
            learnt_after + root_facts_after > 0,
            "retention must preserve some fact derived inside the frame"
        );
        // Retained lemmas are consequences: verdicts are unchanged.
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert_eq!(s.value(lit(7)), LBool::True);
    }

    #[test]
    fn pop_without_retention_discards_learnts() {
        let mut s = relaxed_pigeonhole();
        s.push();
        let asm = [lit(-7)];
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        let clauses_before_pop = s.clauses.len();
        s.pop();
        assert!(
            s.clauses.len() <= clauses_before_pop,
            "exact pop must not grow the clause database"
        );
        assert!(
            s.clauses.iter().all(|c| !c.learnt),
            "exact pop restores the pre-push clause set (no learnts yet)"
        );
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &asm, |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
    }

    #[test]
    fn retained_learnt_unit_propagates() {
        // (¬a∨b), (¬a∨¬b): no unit propagation at depth 0, but assuming
        // `a` inside a frame conflicts and learns the root unit ¬a from
        // depth-0 clauses only. After the pop the retained unit must be
        // assigned at the root without any new search.
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(vec![lit(-1), lit(2)]));
        assert!(s.add_clause(vec![lit(-1), lit(-2)]));
        s.set_retain_learned(true);
        s.push();
        assert_eq!(
            s.solve_with_assumptions(SatLimits::default(), &[lit(1)], |_| FinalCheck::Consistent),
            SatResult::Unsat
        );
        s.pop();
        assert_eq!(s.value(lit(-1)), LBool::True, "retained unit is assigned");
        assert_eq!(s.solve(SatLimits::default()), SatResult::Sat);
        assert_eq!(s.value(lit(-1)), LBool::True);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }
}
