//! Bit-vector reasoning by bit-blasting to the CDCL SAT core.
//!
//! This module backs `by(bit_vector)` proofs: a query whose atoms are all
//! bit-vector operations (plus boolean structure) is translated into CNF —
//! ripple-carry adders, shift-add multipliers, barrel shifters — and handed
//! to [`crate::sat::SatSolver`]. Division and remainder are encoded
//! relationally (`a = b*q + r ∧ r < b`) in double width to avoid overflow.

use std::collections::HashMap;
use std::sync::Arc;

use veris_obs::{Counter, ResourceMeter};

use crate::sat::{FinalCheck, LBool, Lit, SatLimits, SatResult, SatSolver};
use crate::term::{TermId, TermKind, TermStore};

/// Result of a bit-vector validity/satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BvResult {
    Sat(HashMap<TermId, u64>),
    Unsat,
    Unknown,
}

/// Bit-blasting solver. One-shot: build, assert, check.
pub struct BvSolver {
    sat: SatSolver,
    /// Cached bit encodings of bv-sorted terms (LSB first).
    bits: HashMap<TermId, Vec<Lit>>,
    /// Cached literal encodings of boolean terms.
    bools: HashMap<TermId, Lit>,
    /// Literal fixed to true at the root level.
    lit_true: Lit,
    /// Variables whose model values we report back.
    vars: Vec<TermId>,
    /// Optional resource meter; emitted CNF clauses are charged to it.
    meter: Option<Arc<ResourceMeter>>,
}

impl Default for BvSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl BvSolver {
    pub fn new() -> BvSolver {
        let mut sat = SatSolver::new();
        let t = sat.new_var();
        let lit_true = Lit::pos(t);
        sat.add_clause(vec![lit_true]);
        BvSolver {
            sat,
            bits: HashMap::new(),
            bools: HashMap::new(),
            lit_true,
            vars: Vec::new(),
            meter: None,
        }
    }

    /// Attach a resource meter: emitted clauses are charged as
    /// `BitblastClauses` and the underlying SAT search is metered too.
    pub fn set_meter(&mut self, meter: Arc<ResourceMeter>) {
        self.sat.set_meter(meter.clone());
        self.meter = Some(meter);
    }

    /// Add a clause, charging it to the meter when one is attached.
    fn clause(&mut self, lits: Vec<Lit>) {
        if let Some(m) = &self.meter {
            m.charge(Counter::BitblastClauses, 1);
        }
        self.sat.add_clause(lits);
    }

    fn lit_false(&self) -> Lit {
        self.lit_true.negate()
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.lit_true
        } else {
            self.lit_false()
        }
    }

    // --- gate library ---------------------------------------------------

    fn gate_and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() || b == self.lit_false() {
            return self.lit_false();
        }
        if a == self.lit_true {
            return b;
        }
        if b == self.lit_true {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.lit_false();
        }
        let o = self.fresh();
        self.clause(vec![o.negate(), a]);
        self.clause(vec![o.negate(), b]);
        self.clause(vec![o, a.negate(), b.negate()]);
        o
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Lit {
        let na = a.negate();
        let nb = b.negate();
        self.gate_and(na, nb).negate()
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() {
            return b;
        }
        if b == self.lit_false() {
            return a;
        }
        if a == self.lit_true {
            return b.negate();
        }
        if b == self.lit_true {
            return a.negate();
        }
        if a == b {
            return self.lit_false();
        }
        if a == b.negate() {
            return self.lit_true;
        }
        let o = self.fresh();
        self.clause(vec![o.negate(), a, b]);
        self.clause(vec![o.negate(), a.negate(), b.negate()]);
        self.clause(vec![o, a, b.negate()]);
        self.clause(vec![o, a.negate(), b]);
        o
    }

    fn gate_mux(&mut self, sel: Lit, then_: Lit, else_: Lit) -> Lit {
        let a = self.gate_and(sel, then_);
        let b = self.gate_and(sel.negate(), else_);
        self.gate_or(a, b)
    }

    /// Full adder: returns (sum, carry_out).
    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.gate_xor(a, b);
        let sum = self.gate_xor(axb, cin);
        let t1 = self.gate_and(a, b);
        let t2 = self.gate_and(axb, cin);
        let cout = self.gate_or(t1, t2);
        (sum, cout)
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    #[allow(dead_code)]
    fn negate_bits(&mut self, a: &[Lit]) -> Vec<Lit> {
        // Two's complement: ~a + 1
        let na: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let zero: Vec<Lit> = std::iter::repeat_n(self.lit_false(), a.len()).collect();
        let (out, _) = self.adder(&na, &zero, self.lit_true);
        out
    }

    fn mul_bits(&mut self, a: &[Lit], b: &[Lit], out_width: usize) -> Vec<Lit> {
        // Shift-add: accumulate a << i masked by b[i].
        let w = out_width;
        let mut acc: Vec<Lit> = std::iter::repeat_n(self.lit_false(), w).collect();
        for i in 0..b.len().min(w) {
            // partial = (a << i) & b[i], truncated to w.
            let mut partial: Vec<Lit> = Vec::with_capacity(w);
            for k in 0..w {
                let bit = if k >= i && k - i < a.len() {
                    a[k - i]
                } else {
                    self.lit_false()
                };
                partial.push(self.gate_and(bit, b[i]));
            }
            let (sum, _) = self.adder(&acc, &partial, self.lit_false());
            acc = sum;
        }
        acc
    }

    /// `a < b` (unsigned): borrow out of a - b.
    fn ult_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b iff the ripple-carry of a + ~b + 1 has carry-out 0.
        let nb: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        let (_, carry) = self.adder(a, &nb, self.lit_true);
        carry.negate()
    }

    fn eq_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.lit_true;
        for i in 0..a.len() {
            let x = self.gate_xor(a[i], b[i]);
            acc = self.gate_and(acc, x.negate());
        }
        acc
    }

    fn zero_extend(&self, a: &[Lit], w: usize) -> Vec<Lit> {
        let mut out = a.to_vec();
        while out.len() < w {
            out.push(self.lit_false());
        }
        out
    }

    /// Barrel shifter; `left` selects direction. Shift amount is `b`
    /// interpreted unsigned; amounts >= width produce zero.
    fn shift_bits(&mut self, a: &[Lit], b: &[Lit], left: bool) -> Vec<Lit> {
        let w = a.len();
        let mut cur = a.to_vec();
        let stages = usize::BITS as usize - (w - 1).leading_zeros() as usize;
        for s in 0..stages.max(1) {
            if s >= b.len() {
                break;
            }
            let amt = 1usize << s;
            let sel = b[s];
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if left {
                    if i >= amt {
                        cur[i - amt]
                    } else {
                        self.lit_false()
                    }
                } else if i + amt < w {
                    cur[i + amt]
                } else {
                    self.lit_false()
                };
                next.push(self.gate_mux(sel, shifted, cur[i]));
            }
            cur = next;
        }
        // Any set bit in b at position >= stages zeroes the result.
        let mut oob = self.lit_false();
        let stages = stages.max(1);
        for (i, &bit) in b.iter().enumerate() {
            if i >= stages {
                oob = self.gate_or(oob, bit);
            }
        }
        // Also: if the numeric shift within stages bits >= w and w is not a
        // power of two... handled because shifting by amounts up to
        // 2^stages-1 >= w-1; amounts in [w, 2^stages) shift everything out
        // naturally through the mux network. Only bits beyond `stages` need
        // the explicit zeroing above.
        cur.into_iter()
            .map(|l| self.gate_and(l, oob.negate()))
            .collect()
    }

    // --- term encoding ----------------------------------------------------

    fn encode_bits(&mut self, store: &TermStore, t: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bits.get(&t) {
            return bits.clone();
        }
        let kind = store.kind(t).clone();
        let out = match kind {
            TermKind::BvConst { width, value } => (0..width)
                .map(|i| self.const_lit(value >> i & 1 == 1))
                .collect(),
            TermKind::Var(_, _) => {
                let w = store.bv_width(t);
                self.vars.push(t);
                (0..w).map(|_| self.fresh()).collect()
            }
            TermKind::BvNot(a) => {
                let a = self.encode_bits(store, a);
                a.into_iter().map(|l| l.negate()).collect()
            }
            TermKind::BvAnd(a, b) => self.bitwise(store, a, b, Self::gate_and),
            TermKind::BvOr(a, b) => self.bitwise(store, a, b, Self::gate_or),
            TermKind::BvXor(a, b) => self.bitwise(store, a, b, Self::gate_xor),
            TermKind::BvAdd(a, b) => {
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                let f = self.lit_false();
                self.adder(&a, &b, f).0
            }
            TermKind::BvSub(a, b) => {
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                let nb: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
                self.adder(&a, &nb, self.lit_true).0
            }
            TermKind::BvMul(a, b) => {
                let w = store.bv_width(t) as usize;
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                self.mul_bits(&a, &b, w)
            }
            TermKind::BvUdiv(a, b) | TermKind::BvUrem(a, b) => {
                let is_div = matches!(store.kind(t), TermKind::BvUdiv(..));
                let w = store.bv_width(t) as usize;
                let (ab, bb) = (self.encode_bits(store, a), self.encode_bits(store, b));
                let q: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                let r: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                // In 2w bits: a == b*q + r
                let a2 = self.zero_extend(&ab, 2 * w);
                let b2 = self.zero_extend(&bb, 2 * w);
                let q2 = self.zero_extend(&q, 2 * w);
                let bq = self.mul_bits(&b2, &q2, 2 * w);
                let r2 = self.zero_extend(&r, 2 * w);
                let f = self.lit_false();
                let (sum, _) = self.adder(&bq, &r2, f);
                let eq = self.eq_bits(&a2, &sum);
                // r < b (when b != 0)
                let rb = self.ult_bits(&r, &bb);
                let zero: Vec<Lit> = std::iter::repeat_n(self.lit_false(), w).collect();
                let b_is_zero = self.eq_bits(&bb, &zero);
                // b == 0: q = all ones, r = a (SMT-LIB semantics).
                let ones: Vec<Lit> = std::iter::repeat_n(self.lit_true, w).collect();
                let q_ones = self.eq_bits(&q, &ones);
                let r_eq_a = self.eq_bits(&r, &ab);
                let div_by_zero_case = self.gate_and(q_ones, r_eq_a);
                let normal = self.gate_and(eq, rb);
                let constraint = self.gate_mux(b_is_zero, div_by_zero_case, normal);
                self.clause(vec![constraint]);
                if is_div {
                    q
                } else {
                    r
                }
            }
            TermKind::BvShl(a, b) => {
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                self.shift_bits(&a, &b, true)
            }
            TermKind::BvLshr(a, b) => {
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                self.shift_bits(&a, &b, false)
            }
            TermKind::Ite(c, a, b) => {
                let c = self.encode_bool(store, c);
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                a.iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| self.gate_mux(c, x, y))
                    .collect()
            }
            other => panic!("bit-blaster: unsupported bv term {other:?}"),
        };
        self.bits.insert(t, out.clone());
        out
    }

    fn bitwise(
        &mut self,
        store: &TermStore,
        a: TermId,
        b: TermId,
        gate: fn(&mut Self, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| gate(self, x, y))
            .collect()
    }

    /// Encode a boolean term as a literal.
    pub fn encode_bool(&mut self, store: &TermStore, t: TermId) -> Lit {
        if let Some(&l) = self.bools.get(&t) {
            return l;
        }
        let kind = store.kind(t).clone();
        let out = match kind {
            TermKind::BoolConst(b) => self.const_lit(b),
            TermKind::Var(_, _) => self.fresh(),
            TermKind::Not(a) => self.encode_bool(store, a).negate(),
            TermKind::And(parts) => {
                let mut acc = self.lit_true;
                for p in parts {
                    let l = self.encode_bool(store, p);
                    acc = self.gate_and(acc, l);
                }
                acc
            }
            TermKind::Or(parts) => {
                let mut acc = self.lit_false();
                for p in parts {
                    let l = self.encode_bool(store, p);
                    acc = self.gate_or(acc, l);
                }
                acc
            }
            TermKind::Implies(a, b) => {
                let (a, b) = (self.encode_bool(store, a), self.encode_bool(store, b));
                self.gate_or(a.negate(), b)
            }
            TermKind::Eq(a, b) => {
                if store.sort_of(a) == store.bool_sort() {
                    let (a, b) = (self.encode_bool(store, a), self.encode_bool(store, b));
                    let x = self.gate_xor(a, b);
                    x.negate()
                } else {
                    let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                    self.eq_bits(&a, &b)
                }
            }
            TermKind::BvUle(a, b) => {
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                let gt = self.ult_bits(&b, &a);
                gt.negate()
            }
            TermKind::BvUlt(a, b) => {
                let (a, b) = (self.encode_bits(store, a), self.encode_bits(store, b));
                self.ult_bits(&a, &b)
            }
            other => panic!("bit-blaster: unsupported bool term {other:?}"),
        };
        self.bools.insert(t, out);
        out
    }

    /// Assert a boolean term.
    pub fn assert(&mut self, store: &TermStore, t: TermId) {
        let l = self.encode_bool(store, t);
        self.clause(vec![l]);
    }

    /// Check satisfiability of the asserted formulas.
    pub fn check(&mut self, store: &TermStore) -> BvResult {
        match self
            .sat
            .solve_with(SatLimits::default(), |_| FinalCheck::Consistent)
        {
            SatResult::Unsat => BvResult::Unsat,
            SatResult::Unknown => BvResult::Unknown,
            SatResult::Sat => {
                let mut model = HashMap::new();
                for &v in &self.vars {
                    let bits = &self.bits[&v];
                    let mut val = 0u64;
                    for (i, &l) in bits.iter().enumerate() {
                        if self.sat.value(l) == LBool::True {
                            val |= 1 << i;
                        }
                    }
                    model.insert(v, val);
                }
                let _ = store;
                BvResult::Sat(model)
            }
        }
    }
}

/// Prove the validity of a boolean bv formula: assert its negation and
/// expect unsat. Returns `Ok(())` on valid, a countermodel on invalid.
pub fn prove_bv(store: &mut TermStore, goal: TermId) -> Result<(), BvResult> {
    prove_bv_metered(store, goal, None)
}

/// [`prove_bv`] with an optional resource meter charged for every blasted
/// clause and every SAT search step.
pub fn prove_bv_metered(
    store: &mut TermStore,
    goal: TermId,
    meter: Option<Arc<ResourceMeter>>,
) -> Result<(), BvResult> {
    let neg = store.mk_not(goal);
    let mut solver = BvSolver::new();
    if let Some(m) = meter {
        solver.set_meter(m);
    }
    solver.assert(store, neg);
    match solver.check(store) {
        BvResult::Unsat => Ok(()),
        other => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> TermStore {
        TermStore::new()
    }

    #[test]
    fn mask_mod_identity() {
        // x & 511 == x % 512 (the paper's §3.3 example) at width 16.
        let mut s = setup();
        let bv16 = s.bv_sort(16);
        let x = s.mk_var("x", bv16);
        let mask = s.mk_bv_const(16, 511);
        let m = s.mk_bv_const(16, 512);
        let lhs = s.mk_bv_and(x, mask);
        let rhs = s.mk_bv_urem(x, m);
        let goal = s.mk_eq(lhs, rhs);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn add_commutes() {
        let mut s = setup();
        let bv8 = s.bv_sort(8);
        let x = s.mk_var("x", bv8);
        let y = s.mk_var("y", bv8);
        let l = s.mk_bv_add(x, y);
        let r = s.mk_bv_add(y, x);
        let goal = s.mk_eq(l, r);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn invalid_has_countermodel() {
        // x + 1 == x is invalid.
        let mut s = setup();
        let bv8 = s.bv_sort(8);
        let x = s.mk_var("x", bv8);
        let one = s.mk_bv_const(8, 1);
        let l = s.mk_bv_add(x, one);
        let goal = s.mk_eq(l, x);
        assert!(matches!(prove_bv(&mut s, goal), Err(BvResult::Sat(_))));
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let mut s = setup();
        let bv8 = s.bv_sort(8);
        let x = s.mk_var("x", bv8);
        let three = s.mk_bv_const(8, 3);
        let eight = s.mk_bv_const(8, 8);
        let l = s.mk_bv_shl(x, three);
        let r = s.mk_bv_mul(x, eight);
        let goal = s.mk_eq(l, r);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn lshr_bounds() {
        // (x >> 4) <= 15 at width 8.
        let mut s = setup();
        let bv8 = s.bv_sort(8);
        let x = s.mk_var("x", bv8);
        let four = s.mk_bv_const(8, 4);
        let fifteen = s.mk_bv_const(8, 15);
        let sh = s.mk_bv_lshr(x, four);
        let goal = s.mk_bv_ule(sh, fifteen);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn shift_out_of_range_is_zero() {
        let mut s = setup();
        let bv8 = s.bv_sort(8);
        let x = s.mk_var("x", bv8);
        let big = s.mk_bv_const(8, 200);
        let sh = s.mk_bv_shl(x, big);
        let zero = s.mk_bv_const(8, 0);
        let goal = s.mk_eq(sh, zero);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn udiv_urem_roundtrip() {
        // y != 0 ==> x == y * (x / y) + (x % y)
        let mut s = setup();
        let bv8 = s.bv_sort(8);
        let x = s.mk_var("x", bv8);
        let y = s.mk_var("y", bv8);
        let zero = s.mk_bv_const(8, 0);
        let q = s.mk_bv_udiv(x, y);
        let r = s.mk_bv_urem(x, y);
        let yq = s.mk_bv_mul(y, q);
        let sum = s.mk_bv_add(yq, r);
        let eq = s.mk_eq(x, sum);
        let y0 = s.mk_eq(y, zero);
        let ny0 = s.mk_not(y0);
        let goal = s.mk_implies(ny0, eq);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn sub_add_cancel() {
        let mut s = setup();
        let bv16 = s.bv_sort(16);
        let x = s.mk_var("x", bv16);
        let y = s.mk_var("y", bv16);
        let d = s.mk_bv_sub(x, y);
        let back = s.mk_bv_add(d, y);
        let goal = s.mk_eq(back, x);
        assert!(prove_bv(&mut s, goal).is_ok());
    }

    #[test]
    fn paper_mask_bit_example() {
        // i < 13 && (a & mask(13,15)) == 0 ==> ((a | bit(i)) & mask(13,15)) == 0
        // at width 16 (scaled down from the paper's 64-bit version).
        let mut s = setup();
        let bv16 = s.bv_sort(16);
        let a = s.mk_var("a", bv16);
        let i = s.mk_var("i", bv16);
        let mask = s.mk_bv_const(16, 0b1110_0000_0000_0000); // bits 13..15
        let zero = s.mk_bv_const(16, 0);
        let one = s.mk_bv_const(16, 1);
        let thirteen = s.mk_bv_const(16, 13);
        let am = s.mk_bv_and(a, mask);
        let pre1 = s.mk_bv_ult(i, thirteen);
        let pre2 = s.mk_eq(am, zero);
        let bit = s.mk_bv_shl(one, i);
        let abit = s.mk_bv_or(a, bit);
        let abm = s.mk_bv_and(abit, mask);
        let post = s.mk_eq(abm, zero);
        let pre = s.mk_and(vec![pre1, pre2]);
        let goal = s.mk_implies(pre, post);
        assert!(prove_bv(&mut s, goal).is_ok());
    }
}
