//! Offline stand-in for `crossbeam`, backed by `std`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API slice it uses: scoped threads (`thread::scope` with the
//! crossbeam closure shape `|s| s.spawn(|_| ...)`), MPMC unbounded channels
//! (`channel::unbounded`, cloneable senders *and* receivers), and
//! `utils::CachePadded`.

pub mod thread {
    //! Scoped threads in the crossbeam 0.8 shape, on top of
    //! `std::thread::scope`.

    /// Scope handle passed to the `scope` closure and to every spawned
    /// thread's closure (crossbeam lets spawned threads spawn more).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before
    /// this returns. Crossbeam returns `Err` when a child panicked; std
    /// re-raises the panic at join instead, so the `Err` arm here is only
    /// reachable through `catch_unwind`, which is faithful enough for the
    /// `?`/`.unwrap()` call sites in this workspace.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! Unbounded MPMC channel (cloneable `Sender` and `Receiver`).

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by `Sender::send` when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by `Receiver::recv` when the channel is empty and all
    /// senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Error returned by `Receiver::try_recv`.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by `Receiver::recv_timeout`.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T>(Arc<Chan<T>>);

    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }
}

pub mod utils {
    //! `CachePadded`: align a value to (a conservative estimate of) the
    //! cache-line size to prevent false sharing.

    use std::ops::{Deref, DerefMut};

    #[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_children() {
        let mut data = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn channel_mpmc() {
        let (tx, rx) = super::channel::unbounded::<u64>();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn cache_padded_alignment() {
        let v = super::utils::CachePadded::new(7u64);
        assert_eq!(*v, 7);
        assert_eq!(std::mem::align_of_val(&v), 128);
    }
}
