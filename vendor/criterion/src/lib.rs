//! Offline minimal stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion it uses: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size` / `finish`), `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! best-of-samples wall-clock measurement printed to stdout — enough to run
//! the bench binaries and eyeball relative numbers, with no statistics,
//! plotting, or baseline storage.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

pub struct Bencher {
    sample_size: usize,
    best: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then `sample_size` timed runs; keep the minimum.
        black_box(f());
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            best = best.min(t.elapsed());
        }
        self.best = best;
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        best: Duration::ZERO,
    };
    f(&mut b);
    println!("{name:<40} {:>12.3?} (best of {sample_size})", b.best);
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Identity function that defeats constant-folding of benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_smoke() {
        let mut c = super::Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.finish();
        c.bench_function("mul", |b| b.iter(|| 2u64 * 3));
    }
}
