//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic property-testing core with the same surface the
//! tests use: the `proptest!` macro (optional `#![proptest_config(...)]`,
//! `ident in strategy` and `ident: ty` parameters), range / tuple / vec /
//! option strategies, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its seed), and generation is uniform rather than edge-biased. Every run
//! is fully deterministic — the RNG is seeded from the test's module path,
//! name, and case index.

pub mod test_runner {
    /// Deterministic splitmix64 RNG. Seeded per test case from the test
    /// name, so reruns (and machines) always see the same inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            // FNV-1a over the name, then mix in the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Runner configuration; only `cases` is honoured here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Main entry: expands each `#[test] fn name(params) { body }` into a
/// zero-argument test that loops over `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { { $cfg } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            { $crate::prelude::ProptestConfig::default() } $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ({ $cfg:expr }) => {};
    ({ $cfg:expr }
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = ($cfg).cases as u64;
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bindings! { __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_fns! { { $cfg } $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::prelude::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::prelude::any::<$ty>(), &mut $rng);
        $crate::__proptest_bindings! { $rng; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..17,
            b in 0u8..=255,
            v in crate::collection::vec((0usize..5, 1u64..9), 0..10),
            o in crate::option::of(0usize..4),
        ) {
            crate::prop_assert!((3..17).contains(&a));
            let _ = b;
            for (x, y) in v {
                crate::prop_assert!(x < 5);
                crate::prop_assert!((1..9).contains(&y));
            }
            if let Some(o) = o {
                crate::prop_assert!(o < 4);
            }
        }

        #[test]
        fn typed_params_generate(x: u64, y: u8) {
            // Full-domain generation: just exercise the path.
            let _ = x.wrapping_add(y as u64);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let gen = || {
            let mut rng = crate::test_runner::TestRng::deterministic("seed", 7);
            crate::collection::vec(0u64..1000, 5..6).generate(&mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
